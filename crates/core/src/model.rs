//! The deep diffusive network: HFLU + GDU per node type, unrolled
//! diffusion over the News-HSN, joint training (Section 4.3).

use crate::checkpoint::{self, FitOptions};
use crate::sampled::{sample_subgraph, SampledSubgraph};
use crate::trained::TrainedFakeDetector;
use crate::{FakeDetectorConfig, GduCell, Hflu, TrainMode};
use fd_autograd::{Tape, Var};
use fd_data::{CredibilityModel, ExperimentContext, Predictions};
use fd_graph::{NeighborSampler, NodeType};
use fd_nn::{clip_global_norm, Adam, AdamState, Binding, Linear, Optimizer, ParamId, Params};
use fd_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// Seed-mixing constant for the internal validation split.
const VAL_SPLIT_MIX: u64 = 0x7a11_da7e;

/// Seed-mixing constant for the neighbour sampler of sampled training.
const SAMPLER_MIX: u64 = 0x5a3b_1e5e_ed00_0001;

/// Seed-mixing constant for the per-epoch minibatch shuffle.
const BATCH_SHUFFLE_MIX: u64 = 0xba7c_0bdf_0000_0002;

/// Sampler salt reserved for the validation subgraphs (training batches
/// salt with `epoch * GOLDEN + batch + 1`, which never reaches this).
const VAL_SAMPLE_SALT: u64 = u64::MAX;

/// One sampled-mode validation chunk: a fixed subgraph plus the chunk's
/// held-out items as `(type, local row, target class)`.
type ValChunk = (SampledSubgraph, Vec<(NodeType, usize, usize)>);

/// How many times the divergence guard may halve the learning rate
/// before giving up and returning the last good weights.
const MAX_LR_HALVINGS: u32 = 6;

/// Without a checkpoint store the divergence guard still needs a
/// rollback target; refresh it every this many epochs.
const GUARD_EVERY: usize = 10;

pub(crate) fn type_slot(ty: NodeType) -> usize {
    match ty {
        NodeType::Article => 0,
        NodeType::Creator => 1,
        NodeType::Subject => 2,
    }
}

/// Scores `items` against `states` (rows indexed however `items` says)
/// and adds per-type correct/total counts — the shared kernel of
/// full-graph and chunked sampled validation. One batched row gather
/// plus one head matmul per entity type; bit-identical to scoring each
/// item alone because both the gather and the head are row-independent.
fn accumulate_validation(
    network: &Network,
    states: &[Matrix; 3],
    items: &[(NodeType, usize, usize)],
    correct: &mut [usize; 3],
    total: &mut [usize; 3],
) {
    let mut rows: [Vec<Option<usize>>; 3] = Default::default();
    let mut targets: [Vec<usize>; 3] = Default::default();
    for &(ty, idx, target) in items {
        let slot = type_slot(ty);
        rows[slot].push(Some(idx));
        targets[slot].push(target);
    }
    for slot in 0..3 {
        if rows[slot].is_empty() {
            continue;
        }
        let sel = fd_tensor::gather_rows(&states[slot], &rows[slot]);
        let logits = network.heads[slot].forward_matrix(&network.params, &sel);
        correct[slot] += targets[slot]
            .iter()
            .enumerate()
            .filter(|&(k, &target)| logits.row_argmax(k).index == target)
            .count();
        total[slot] += rows[slot].len();
    }
}

/// Accuracy macro-averaged over the entity types present in the counts,
/// so the article-heavy validation pool does not drown out
/// creators/subjects.
fn macro_accuracy(correct: &[usize; 3], total: &[usize; 3]) -> f64 {
    let (mut acc_sum, mut types_present) = (0.0f64, 0usize);
    for slot in 0..3 {
        if total[slot] > 0 {
            acc_sum += correct[slot] as f64 / total[slot] as f64;
            types_present += 1;
        }
    }
    acc_sum / types_present.max(1) as f64
}

/// Macro-averaged validation accuracy over pre-update diffusion states.
fn validation_accuracy(
    network: &Network,
    states: &[Matrix; 3],
    val_items: &[(NodeType, usize, usize)],
) -> f64 {
    let (mut correct, mut total) = ([0usize; 3], [0usize; 3]);
    accumulate_validation(network, states, val_items, &mut correct, &mut total);
    macro_accuracy(&correct, &total)
}

/// Times the phases of one training epoch for the profiler: [`lap`]
/// records the time since the previous lap (or [`reset`]) into the
/// phase's histogram and — when the run is traced — as a span under
/// the epoch's trace context, nesting `train.fit` → `train.epoch` →
/// phase in the exported Chrome trace.
///
/// [`lap`]: PhaseTimer::lap
/// [`reset`]: PhaseTimer::reset
struct PhaseTimer<'a> {
    parent: &'a fd_obs::TraceCtx,
    started: std::time::Instant,
    started_us: u64,
}

impl<'a> PhaseTimer<'a> {
    fn start(parent: &'a fd_obs::TraceCtx) -> Self {
        Self { parent, started: std::time::Instant::now(), started_us: fd_obs::trace::now_us() }
    }

    /// Restarts the clock without recording — skips code between laps
    /// that belongs to no phase.
    fn reset(&mut self) {
        self.started = std::time::Instant::now();
        self.started_us = fd_obs::trace::now_us();
    }

    /// Closes the current phase and restarts the clock.
    fn lap(&mut self, name: &'static str, hist: &fd_obs::Histogram) {
        let dur = self.started.elapsed();
        hist.record(dur.as_secs_f64() * 1e6);
        if self.parent.sampled {
            self.parent.child().record(name, self.started_us, dur.as_micros() as u64);
        }
        self.reset();
    }
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct TrainReport {
    /// Total loss (cross-entropy + α·L2) per epoch.
    pub losses: Vec<f32>,
    /// Pre-clip global gradient norm per epoch.
    pub grad_norms: Vec<f32>,
    /// Wall-clock milliseconds per epoch (absent in reports saved before
    /// this field existed). Epochs replayed from a checkpoint resume
    /// are recorded as 0.0 — wall-clock history is deliberately *not*
    /// part of the durable state, so checkpoint files stay
    /// byte-comparable across runs.
    #[serde(default)]
    pub epoch_ms: Vec<f64>,
    /// Times the divergence guard fired: a non-finite loss or gradient
    /// norm rolled training back to the last good snapshot with a
    /// halved learning rate. Not persisted in checkpoints (resumed
    /// reports restart the count).
    #[serde(default)]
    pub divergence_rollbacks: u32,
}

/// The divergence guard's rollback target: a full copy of the mutable
/// training state, taken at checkpoint cadence. Rolling back *several*
/// epochs matters: training is deterministic in the weights, so
/// re-running only the failed epoch with the same state would replay
/// the same non-finite loss — the halved learning rate must get some
/// epochs of different trajectory to steer away from the blow-up.
struct GuardSnapshot {
    epoch: usize,
    params: Params,
    opt: AdamState,
    best: Option<(f64, Params)>,
    since_best: usize,
    n_hist: usize,
}

impl GuardSnapshot {
    fn capture(
        epoch: usize,
        network: &Network,
        optimizer: &Adam,
        best: &Option<(f64, Params)>,
        since_best: usize,
        report: &TrainReport,
    ) -> Self {
        Self {
            epoch,
            params: network.params_snapshot(),
            opt: optimizer.export_state(&network.params),
            best: best.clone(),
            since_best,
            n_hist: report.losses.len(),
        }
    }
}

/// Rolls training back to the divergence guard's snapshot with a halved
/// learning rate — the shared recovery path of full-graph and sampled
/// epochs. Returns `false` when the halving budget is exhausted and
/// training should stop with the last good weights.
#[allow(clippy::too_many_arguments)]
fn rollback_divergence(
    network: &mut Network,
    optimizer: &mut Adam,
    guard: &GuardSnapshot,
    best: &mut Option<(f64, Params)>,
    since_best: &mut usize,
    report: &mut TrainReport,
    epoch: &mut usize,
    lr_halvings: &mut u32,
) -> bool {
    report.divergence_rollbacks += 1;
    fd_obs::counter("train.divergence_rollbacks").inc();
    network.params = guard.params.clone();
    optimizer
        .restore_state(&network.params, &guard.opt)
        .expect("guard snapshot always matches the live network");
    *best = guard.best.clone();
    *since_best = guard.since_best;
    report.losses.truncate(guard.n_hist);
    report.grad_norms.truncate(guard.n_hist);
    report.epoch_ms.truncate(guard.n_hist);
    *epoch = guard.epoch;
    if *lr_halvings >= MAX_LR_HALVINGS {
        fd_obs::event(
            fd_obs::Level::Error,
            "train.diverged",
            &[("epoch", (*epoch).into()), ("lr", optimizer.lr().into())],
        );
        return false;
    }
    let halved = optimizer.lr() * 0.5;
    optimizer.set_lr(halved);
    *lr_halvings += 1;
    fd_obs::event(
        fd_obs::Level::Error,
        "train.divergence_rollback",
        &[
            ("epoch", (*epoch).into()),
            ("lr", halved.into()),
            ("lr_halvings", (*lr_halvings).into()),
        ],
    );
    true
}

/// Builds the durable checkpoint for the state *entering* epoch
/// `epoch_done` and writes it through the store's atomic-rename
/// protocol.
#[allow(clippy::too_many_arguments)]
fn save_checkpoint(
    store: &fd_ckpt::CheckpointStore,
    epoch_done: usize,
    network: &Network,
    optimizer: &Adam,
    report: &TrainReport,
    best: &Option<(f64, Params)>,
    since_best: usize,
    lr_halvings: u32,
    seed: u64,
    dims: NetworkDims,
    fingerprint: &str,
) -> Result<std::path::PathBuf, String> {
    let state = optimizer.export_state(&network.params);
    let (opt_m, opt_v) = checkpoint::adam_to_entries(&state);
    let ckpt = fd_ckpt::TrainCheckpoint {
        epoch: epoch_done as u64,
        opt_step: state.step,
        lr: f64::from(optimizer.lr()),
        seed,
        vocab: dims.vocab as u64,
        explicit_dim: dims.explicit_dim as u64,
        n_classes: dims.n_classes as u64,
        since_best: since_best as u64,
        lr_halvings: u64::from(lr_halvings),
        best_acc: best.as_ref().map(|(acc, _)| *acc),
        config_fingerprint: fingerprint.to_string(),
        losses: report.losses.iter().map(|&l| f64::from(l)).collect(),
        grad_norms: report.grad_norms.iter().map(|&g| f64::from(g)).collect(),
        params: checkpoint::params_to_entries(&network.params),
        opt_m,
        opt_v,
        best_params: best
            .as_ref()
            .map(|(_, p)| checkpoint::params_to_entries(p))
            .unwrap_or_default(),
    };
    let path = store
        .save(&ckpt)
        .map_err(|e| format!("checkpoint save at epoch {epoch_done} failed: {e}"))?;
    fd_obs::counter("ckpt.saves").inc();
    fd_obs::event(
        fd_obs::Level::Debug,
        "ckpt.saved",
        &[("epoch", epoch_done.into()), ("path", path.display().to_string().into())],
    );
    Ok(path)
}

/// The assembled network: parameter store plus the per-type components.
///
/// Construction is deterministic in `(config, dims, seed)`; rebuilding
/// over an existing [`Params`] store (same names, insertion order)
/// re-attaches to the stored weights, which is how deserialisation works.
pub(crate) struct Network {
    pub params: Params,
    pub hflu: [Hflu; 3],
    pub gdu: [GduCell; 3],
    pub heads: [Linear; 3],
    pub reg_ids: Vec<ParamId>,
}

/// Structural dimensions a network was built for; persisted alongside
/// the weights so a loaded model can verify its context matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub(crate) struct NetworkDims {
    pub vocab: usize,
    pub explicit_dim: usize,
    pub n_classes: usize,
}

impl Network {
    /// Builds (or re-attaches to) the network components over `params`.
    pub fn build(
        config: &FakeDetectorConfig,
        dims: NetworkDims,
        mut params: Params,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let hflu: [Hflu; 3] = [
            Hflu::new(&mut params, "hflu.article", NodeType::Article, dims.vocab, dims.explicit_dim, config, &mut rng),
            Hflu::new(&mut params, "hflu.creator", NodeType::Creator, dims.vocab, dims.explicit_dim, config, &mut rng),
            Hflu::new(&mut params, "hflu.subject", NodeType::Subject, dims.vocab, dims.explicit_dim, config, &mut rng),
        ];
        let x_dim = config.hflu_out_dim(dims.explicit_dim);
        let gdu: [GduCell; 3] = [
            GduCell::new(&mut params, "gdu.article", x_dim, config.gdu_hidden, &mut rng),
            GduCell::new(&mut params, "gdu.creator", x_dim, config.gdu_hidden, &mut rng),
            GduCell::new(&mut params, "gdu.subject", x_dim, config.gdu_hidden, &mut rng),
        ];
        let heads: [Linear; 3] = [
            Linear::new(&mut params, "head.article", config.gdu_hidden, dims.n_classes, &mut rng),
            Linear::new(&mut params, "head.creator", config.gdu_hidden, dims.n_classes, &mut rng),
            Linear::new(&mut params, "head.subject", config.gdu_hidden, dims.n_classes, &mut rng),
        ];
        let reg_ids: Vec<ParamId> = hflu
            .iter()
            .flat_map(Hflu::param_ids)
            .chain(gdu.iter().flat_map(GduCell::param_ids))
            .chain(heads.iter().flat_map(Linear::param_ids))
            .collect();
        Self { params, hflu, gdu, heads, reg_ids }
    }

    /// Full-graph forward: HFLU features once, then `diffusion_rounds`
    /// synchronous GDU updates. Round 0 sees zero neighbour states, so
    /// with `L` rounds information travels `L` hops — the unrolled
    /// reading of Figure 3(c)'s mutual data flow.
    pub fn forward_states(
        &self,
        config: &FakeDetectorConfig,
        bind: &Binding<'_>,
        ctx: &ExperimentContext<'_>,
    ) -> [Vec<Var>; 3] {
        let tape = bind.tape();
        let graph = &ctx.corpus.graph;
        let feats: [Vec<Var>; 3] = [
            (0..graph.n_articles()).map(|i| self.hflu[0].encode(bind, ctx, i)).collect(),
            (0..graph.n_creators()).map(|i| self.hflu[1].encode(bind, ctx, i)).collect(),
            (0..graph.n_subjects()).map(|i| self.hflu[2].encode(bind, ctx, i)).collect(),
        ];
        let zero = tape.leaf(Matrix::zeros(1, config.gdu_hidden));
        let mut states: [Vec<Var>; 3] = [
            vec![zero; graph.n_articles()],
            vec![zero; graph.n_creators()],
            vec![zero; graph.n_subjects()],
        ];
        let rounds = config.diffusion_rounds.max(1);
        for _round in 0..rounds {
            let mut next: [Vec<Var>; 3] = [
                Vec::with_capacity(graph.n_articles()),
                Vec::with_capacity(graph.n_creators()),
                Vec::with_capacity(graph.n_subjects()),
            ];
            for (a, &feat) in feats[0].iter().enumerate() {
                let (z, t_in) = if config.use_diffusion {
                    let subjects = graph.subjects_of_article(a);
                    let z = if subjects.is_empty() {
                        zero
                    } else {
                        let vars: Vec<Var> = subjects.iter().map(|&s| states[2][s]).collect();
                        tape.mean_n(&vars)
                    };
                    let t_in = graph.author_of(a).map_or(zero, |u| states[1][u]);
                    (z, t_in)
                } else {
                    (zero, zero)
                };
                next[0].push(self.gdu[0].forward(bind, feat, z, t_in, config.use_gates));
            }
            for (u, &feat) in feats[1].iter().enumerate() {
                let z = self.aggregate(config, bind, &states[0], graph.articles_of_creator(u), zero);
                next[1].push(self.gdu[1].forward(bind, feat, z, zero, config.use_gates));
            }
            for (s, &feat) in feats[2].iter().enumerate() {
                let z = self.aggregate(config, bind, &states[0], graph.articles_of_subject(s), zero);
                next[2].push(self.gdu[2].forward(bind, feat, z, zero, config.use_gates));
            }
            states = next;
        }
        states
    }

    /// Tape-recorded batched twin of [`Network::forward_states`]: one
    /// `count x hidden` variable per node type instead of one variable
    /// per node, so a whole epoch records `O(rounds)` tape nodes per
    /// type rather than `O(nodes)`. Row `i` of each state is
    /// bit-identical to the per-node tape value for node `i`: the HFLU
    /// batch encoder replays the per-node schedule exactly, the batched
    /// neighbour mean replays `Tape::mean_n`'s arithmetic, and the GDU
    /// is row-independent. Every matmul inside routes through the
    /// blocked/parallel kernels, so `FD_THREADS` now speeds up training,
    /// not just inference.
    pub fn forward_states_batched(
        &self,
        config: &FakeDetectorConfig,
        bind: &Binding<'_>,
        ctx: &ExperimentContext<'_>,
    ) -> [Var; 3] {
        let tape = bind.tape();
        let graph = &ctx.corpus.graph;
        let counts = [graph.n_articles(), graph.n_creators(), graph.n_subjects()];
        let hidden = config.gdu_hidden;
        let feats: [Var; 3] =
            [0, 1, 2].map(|slot| self.hflu[slot].encode_batch_tape(bind, ctx, counts[slot]));

        // Adjacency in dense row-list form, shared by every round's
        // gather/mean ops (the tape holds `Rc` clones, not copies).
        let subjects_of_article: Rc<Vec<Vec<usize>>> =
            Rc::new((0..counts[0]).map(|a| graph.subjects_of_article(a).to_vec()).collect());
        let articles_of_creator: Rc<Vec<Vec<usize>>> =
            Rc::new((0..counts[1]).map(|u| graph.articles_of_creator(u).to_vec()).collect());
        let articles_of_subject: Rc<Vec<Vec<usize>>> =
            Rc::new((0..counts[2]).map(|s| graph.articles_of_subject(s).to_vec()).collect());
        let author: Vec<Option<usize>> = (0..counts[0]).map(|a| graph.author_of(a)).collect();

        let zeros: [Var; 3] = counts.map(|n| tape.leaf(Matrix::zeros(n, hidden)));
        let mut states = zeros;
        let rounds = config.diffusion_rounds.max(1);
        for _round in 0..rounds {
            states = if config.use_diffusion {
                let z_articles = tape.mean_rows(states[2], Rc::clone(&subjects_of_article));
                let t_articles = tape.gather_rows(states[1], &author);
                let z_creators = tape.mean_rows(states[0], Rc::clone(&articles_of_creator));
                let z_subjects = tape.mean_rows(states[0], Rc::clone(&articles_of_subject));
                [
                    self.gdu[0].forward(bind, feats[0], z_articles, t_articles, config.use_gates),
                    self.gdu[1].forward(bind, feats[1], z_creators, zeros[1], config.use_gates),
                    self.gdu[2].forward(bind, feats[2], z_subjects, zeros[2], config.use_gates),
                ]
            } else {
                [0, 1, 2].map(|slot| {
                    self.gdu[slot].forward(bind, feats[slot], zeros[slot], zeros[slot], config.use_gates)
                })
            };
        }
        states
    }

    /// Sampled-subgraph twin of [`Network::forward_states_batched`]:
    /// the same batched gather/mean/GDU schedule, but over a
    /// [`SampledSubgraph`]'s compacted node set — HFLU encodes only the
    /// subgraph members and every adjacency op reads the sampled local
    /// lists, so tape size per step scales with the subgraph, not the
    /// corpus. When the subgraph covers a node's full neighbourhood
    /// (fan-out at or above its degree, node interior to the hop
    /// radius), its state row is bit-identical to the full-graph batched
    /// forward; at the receptive-field boundary neighbourhoods are
    /// truncated (the GraphSAGE approximation).
    pub fn forward_states_subgraph(
        &self,
        config: &FakeDetectorConfig,
        bind: &Binding<'_>,
        ctx: &ExperimentContext<'_>,
        sub: &SampledSubgraph,
        rounds: usize,
    ) -> [Var; 3] {
        let tape = bind.tape();
        let counts = [sub.nodes[0].len(), sub.nodes[1].len(), sub.nodes[2].len()];
        let hidden = config.gdu_hidden;
        let feats: [Var; 3] =
            [0, 1, 2].map(|slot| self.hflu[slot].encode_subset_tape(bind, ctx, &sub.nodes[slot]));
        let zeros: [Var; 3] = counts.map(|n| tape.leaf(Matrix::zeros(n, hidden)));
        let mut states = zeros;
        for _round in 0..rounds.max(1) {
            states = if config.use_diffusion {
                let z_articles = tape.mean_rows(states[2], Rc::clone(&sub.subjects_of_article));
                let t_articles = tape.gather_rows(states[1], &sub.author);
                let z_creators = tape.mean_rows(states[0], Rc::clone(&sub.articles_of_creator));
                let z_subjects = tape.mean_rows(states[0], Rc::clone(&sub.articles_of_subject));
                [
                    self.gdu[0].forward(bind, feats[0], z_articles, t_articles, config.use_gates),
                    self.gdu[1].forward(bind, feats[1], z_creators, zeros[1], config.use_gates),
                    self.gdu[2].forward(bind, feats[2], z_subjects, zeros[2], config.use_gates),
                ]
            } else {
                [0, 1, 2].map(|slot| {
                    self.gdu[slot].forward(bind, feats[slot], zeros[slot], zeros[slot], config.use_gates)
                })
            };
        }
        states
    }

    /// Tape-free batched twin of [`Network::forward_states`]: one
    /// `count x hidden` state matrix per node type instead of per-node
    /// tape variables. Row `i` of each matrix is bit-identical to the
    /// tape value for node `i` — the blocked matmul reduces every output
    /// element in a fixed order independent of batch size, the gather
    /// mean below replays `Tape::mean_n` exactly, and all remaining ops
    /// are elementwise. The three HFLU sweeps and the three per-round
    /// GDU updates are independent, so both fan out across `FD_THREADS`.
    pub fn forward_states_matrix(
        &self,
        config: &FakeDetectorConfig,
        ctx: &ExperimentContext<'_>,
    ) -> [Matrix; 3] {
        self.forward_states_rounds(config, ctx).pop().expect("at least one diffusion round")
    }

    /// [`Network::forward_states_matrix`] keeping *every* round's state
    /// matrices instead of only the last: element `r` holds the states
    /// after round `r + 1`, and the final element is bit-identical to
    /// `forward_states_matrix` (which delegates here). The per-round
    /// history is what incremental ingestion diffs against — a delta
    /// update at round `r` needs the unmodified round `r - 1` states of
    /// the untouched base nodes.
    pub fn forward_states_rounds(
        &self,
        config: &FakeDetectorConfig,
        ctx: &ExperimentContext<'_>,
    ) -> Vec<[Matrix; 3]> {
        use fd_tensor::parallel;
        let graph = &ctx.corpus.graph;
        let counts = [graph.n_articles(), graph.n_creators(), graph.n_subjects()];
        let n_nodes: usize = counts.iter().sum();
        let hidden = config.gdu_hidden;

        let feat_work = n_nodes * config.embed_dim * config.gru_hidden;
        let feats: [Matrix; 3] = parallel::par_map(3, feat_work, |slot| {
            self.hflu[slot].encode_batch(&self.params, ctx, counts[slot])
        })
        .try_into()
        .expect("par_map returns one result per slot");

        let zeros: [Matrix; 3] = [
            Matrix::zeros(counts[0], hidden),
            Matrix::zeros(counts[1], hidden),
            Matrix::zeros(counts[2], hidden),
        ];
        let round_work = n_nodes * hidden * hidden;
        let rounds = config.diffusion_rounds.max(1);
        let mut history: Vec<[Matrix; 3]> = Vec::with_capacity(rounds);
        for _round in 0..rounds {
            let states: &[Matrix; 3] = history.last().unwrap_or(&zeros);
            let next: [Matrix; 3] = parallel::par_map(3, round_work, |slot| {
                let (z, t_in) = if !config.use_diffusion {
                    (Matrix::zeros(counts[slot], hidden), Matrix::zeros(counts[slot], hidden))
                } else if slot == 0 {
                    let z = fd_tensor::mean_rows(&states[2], counts[0], |a| {
                        graph.subjects_of_article(a)
                    });
                    let mut t_in = Matrix::zeros(counts[0], hidden);
                    for a in 0..counts[0] {
                        if let Some(u) = graph.author_of(a) {
                            t_in.row_mut(a).copy_from_slice(states[1].row(u));
                        }
                    }
                    (z, t_in)
                } else {
                    let z = fd_tensor::mean_rows(&states[0], counts[slot], |i| {
                        if slot == 1 {
                            graph.articles_of_creator(i)
                        } else {
                            graph.articles_of_subject(i)
                        }
                    });
                    (z, Matrix::zeros(counts[slot], hidden))
                };
                self.gdu[slot].forward_matrix(
                    &self.params,
                    &feats[slot],
                    &z,
                    &t_in,
                    config.use_gates,
                )
            })
            .try_into()
            .expect("par_map returns one result per slot");
            history.push(next);
        }
        history
    }

    /// Mean of the listed article states, or the zero state when
    /// diffusion is ablated or the list is empty.
    fn aggregate(
        &self,
        config: &FakeDetectorConfig,
        bind: &Binding<'_>,
        article_states: &[Var],
        articles: &[usize],
        zero: Var,
    ) -> Var {
        if !config.use_diffusion || articles.is_empty() {
            return zero;
        }
        let vars: Vec<Var> = articles.iter().map(|&a| article_states[a]).collect();
        bind.tape().mean_n(&vars)
    }

    /// A deep copy of the current weights (early-stopping snapshots).
    pub fn params_snapshot(&self) -> Params {
        self.params.clone()
    }
}

/// The FakeDetector model (configuration only; parameters are built
/// fresh inside each `fit` call, making runs independent and
/// deterministic in the context seed).
#[derive(Debug, Clone, Default)]
pub struct FakeDetector {
    /// Hyper-parameters and ablation switches.
    pub config: FakeDetectorConfig,
}

impl FakeDetector {
    /// A model with the given configuration.
    pub fn new(config: FakeDetectorConfig) -> Self {
        Self { config }
    }

    /// Trains the deep diffusive network on the context's train sets and
    /// returns the trained model (weights + diagnostics), usable for
    /// transductive prediction, inductive new-article scoring and
    /// (de)serialisation.
    ///
    /// ```
    /// use fd_core::{FakeDetector, FakeDetectorConfig};
    /// # use fd_data::{generate, CvSplits, ExplicitFeatures, GeneratorConfig,
    /// #               ExperimentContext, LabelMode, TokenizedCorpus, TrainSets};
    /// # use rand::{rngs::StdRng, SeedableRng};
    /// # let corpus = generate(&GeneratorConfig::politifact().scaled(0.008), 7);
    /// # let tokenized = TokenizedCorpus::build(&corpus, 8, 1500);
    /// # let mut rng = StdRng::seed_from_u64(1);
    /// # let train = TrainSets {
    /// #     articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
    /// #     creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
    /// #     subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
    /// # };
    /// # let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 20);
    /// # let ctx = ExperimentContext {
    /// #     corpus: &corpus, tokenized: &tokenized, explicit: &explicit,
    /// #     train: &train, mode: LabelMode::Binary, seed: 1,
    /// # };
    /// let config = FakeDetectorConfig { epochs: 1, ..FakeDetectorConfig::default() };
    /// let trained = FakeDetector::new(config).fit(&ctx);
    /// assert_eq!(trained.report().losses.len(), 1);
    /// let predictions = trained.predict(&ctx);
    /// assert_eq!(predictions.articles.len(), ctx.corpus.articles.len());
    /// ```
    pub fn fit(&self, ctx: &ExperimentContext<'_>) -> TrainedFakeDetector {
        self.fit_with(ctx, &FitOptions::default())
            .expect("fit without checkpointing cannot fail")
    }

    /// [`FakeDetector::fit`] with durability options: periodic
    /// crash-safe checkpoints, resume from the newest valid checkpoint,
    /// and (with or without a checkpoint directory) a divergence guard
    /// that rolls training back to the last good snapshot with a halved
    /// learning rate when an epoch produces a non-finite loss or
    /// gradient norm, instead of letting NaNs poison the weights.
    ///
    /// **Bitwise-resume invariant**: a run killed after any durable
    /// checkpoint and restarted with [`FitOptions::resume`] finishes
    /// with weights bit-identical to the uninterrupted run. Everything
    /// the epoch loop depends on is either deterministic in
    /// `(config, seed)` — network init, validation split, forward and
    /// backward order — or captured in the checkpoint: weights, Adam
    /// moments and step, loss history, early-stopping state, and
    /// learning-rate halvings.
    ///
    /// Fails on checkpoint I/O errors, on a resume against an
    /// incompatible checkpoint (different configuration, dimensions or
    /// seed), or when every file in the checkpoint directory is
    /// corrupt.
    pub fn fit_with(
        &self,
        ctx: &ExperimentContext<'_>,
        options: &FitOptions,
    ) -> Result<TrainedFakeDetector, String> {
        let cfg = &self.config;
        // fit runs a handful of times per process, so registry lookups
        // here are off the hot path; the epoch loop reuses the handles.
        let fit_us = fd_obs::histogram("train.fit_us", &fd_obs::exponential_buckets(1e3, 4.0, 10));
        let epoch_us =
            fd_obs::histogram("train.epoch_us", &fd_obs::exponential_buckets(100.0, 4.0, 10));
        let epochs_run = fd_obs::counter("train.epochs");
        let _fit_span = fd_obs::span_timed("fit", fit_us);
        // Per-phase profiling: each epoch phase gets a histogram, and —
        // when FD_TRACE is on — a span nested train.fit → train.epoch →
        // phase, so `fdctl trace summarize` can attribute epoch time.
        let phase_bounds = fd_obs::exponential_buckets(50.0, 4.0, 10);
        let forward_us = fd_obs::histogram("train.phase.forward_us", &phase_bounds);
        let backward_us = fd_obs::histogram("train.phase.backward_us", &phase_bounds);
        let clip_us = fd_obs::histogram("train.phase.clip_us", &phase_bounds);
        let optimizer_us = fd_obs::histogram("train.phase.optimizer_us", &phase_bounds);
        let validate_us = fd_obs::histogram("train.phase.validate_us", &phase_bounds);
        let checkpoint_us = fd_obs::histogram("train.phase.checkpoint_us", &phase_bounds);
        // Sampled-mode phase: subgraph gathering. Registered alongside
        // the other phases (it simply stays empty in full-graph runs).
        let sample_us = fd_obs::histogram("train.phase.sample_us", &phase_bounds);
        let fit_trace = fd_obs::TraceCtx::root();
        // Guard, not manual record: the fit span closes on every return
        // path, including checkpoint-error early exits.
        let fit_trace_span = fit_trace.span("train.fit");
        let dims = NetworkDims {
            vocab: ctx.tokenized.vocab.id_space(),
            explicit_dim: ctx.explicit.dim,
            n_classes: ctx.n_classes(),
        };
        let seed = ctx.seed ^ 0xfa_ce_de_7e;
        let mut network = Network::build(cfg, dims, Params::new(), seed);
        let mut optimizer = Adam::new(cfg.lr);
        let mut report = TrainReport::default();

        let fingerprint = checkpoint::config_fingerprint(cfg);
        let store = match &options.checkpoint_dir {
            Some(dir) => Some(
                fd_ckpt::CheckpointStore::open(dir, options.checkpoint_keep.max(2)).map_err(
                    |e| format!("cannot open checkpoint directory {}: {e}", dir.display()),
                )?,
            ),
            None => None,
        };

        // Hold out a slice of the training entities for early stopping;
        // validation logits fall out of the same forward pass for free.
        let mut items: Vec<(NodeType, usize, usize)> = ctx.train_items();
        let mut split_rng = StdRng::seed_from_u64(seed ^ VAL_SPLIT_MIX);
        use rand::seq::SliceRandom;
        items.shuffle(&mut split_rng);
        let n_val = if cfg.validation_fraction > 0.0 {
            ((items.len() as f64 * cfg.validation_fraction) as usize).min(items.len() - 1)
        } else {
            0
        };
        let (val_items, fit_items) = items.split_at(n_val);
        assert!(!fit_items.is_empty(), "FakeDetector: empty training set");

        // Batched-loss assembly, fixed across epochs: which state row
        // each fit item reads (per type), and where its logits row lands
        // in the type-stacked matrix, so the batched cross-entropy can
        // sum per-item terms in exactly the per-node (shuffled) order —
        // that left-to-right association is the bit-comparability
        // contract between the two training paths.
        let mut fit_rows: [Vec<Option<usize>>; 3] = Default::default();
        let mut targets: Vec<usize> = Vec::with_capacity(fit_items.len());
        let mut within_slot: Vec<usize> = Vec::with_capacity(fit_items.len());
        for &(ty, idx, target) in fit_items {
            let slot = type_slot(ty);
            within_slot.push(fit_rows[slot].len());
            fit_rows[slot].push(Some(idx));
            targets.push(target);
        }
        let offsets = {
            let mut off = [0usize; 3];
            let mut acc = 0;
            for (o, rows) in off.iter_mut().zip(&fit_rows) {
                *o = acc;
                acc += rows.len();
            }
            off
        };
        let stack_order: Vec<Option<usize>> = fit_items
            .iter()
            .zip(&within_slot)
            .map(|(&(ty, _, _), &w)| Some(offsets[type_slot(ty)] + w))
            .collect();

        // Sampled minibatch mode: a deterministic neighbour sampler (a
        // pure function of seed/salt/node, so the epoch schedule is
        // replayable across resumes and thread counts) plus the
        // sampler-specific observability instruments.
        let sampled_setup = match cfg.train_mode {
            TrainMode::Sampled { batch_size, fanout, rounds } => {
                assert!(batch_size > 0, "TrainMode::Sampled: batch_size must be > 0");
                assert!(rounds > 0, "TrainMode::Sampled: rounds must be > 0");
                Some((batch_size, rounds, NeighborSampler::new(seed ^ SAMPLER_MIX, [fanout; 3])))
            }
            TrainMode::Full => None,
        };
        let sampler_fanout_hist = sampled_setup.as_ref().map(|_| {
            fd_obs::histogram("train.sampler.fanout", &fd_obs::exponential_buckets(1.0, 2.0, 10))
        });
        let subgraph_nodes_hist = sampled_setup.as_ref().map(|_| {
            fd_obs::histogram(
                "train.sampler.subgraph_nodes",
                &fd_obs::exponential_buckets(16.0, 4.0, 10),
            )
        });
        let subgraph_edges_hist = sampled_setup.as_ref().map(|_| {
            fd_obs::histogram(
                "train.sampler.subgraph_edges",
                &fd_obs::exponential_buckets(16.0, 4.0, 10),
            )
        });
        // Validation fixtures for sampled mode, built once: the held-out
        // items in batch-sized chunks, each with its own subgraph drawn
        // at a fixed salt. Chunking bounds validation memory the same
        // way minibatching bounds training memory, and the fixed salt
        // keeps the accuracy curve a function of the weights alone.
        let val_fixture: Option<Vec<ValChunk>> =
            sampled_setup.as_ref().and_then(|&(batch_size, rounds, ref sampler)| {
                (n_val > 0).then(|| {
                    val_items
                        .chunks(batch_size)
                        .map(|chunk| {
                            let seeds: Vec<(NodeType, usize)> =
                                chunk.iter().map(|&(ty, idx, _)| (ty, idx)).collect();
                            let sub = sample_subgraph(
                                &ctx.corpus.graph,
                                sampler,
                                &seeds,
                                rounds,
                                VAL_SAMPLE_SALT,
                            );
                            let local_items: Vec<(NodeType, usize, usize)> = chunk
                                .iter()
                                .zip(&sub.seed_rows)
                                .map(|(&(ty, _, target), &(_, local))| (ty, local, target))
                                .collect();
                            (sub, local_items)
                        })
                        .collect()
                })
            });

        let mut best: Option<(f64, Params)> = None;
        let mut since_best = 0usize;
        let mut lr_halvings: u32 = 0;
        let mut start_epoch = 0usize;
        if options.resume {
            if let Some(store) = &store {
                let loaded =
                    store.load_latest().map_err(|e| format!("cannot resume: {e}"))?;
                if let Some(loaded) = loaded {
                    let at = |e: String| format!("cannot resume from {}: {e}", loaded.path.display());
                    for (path, why) in &loaded.skipped {
                        fd_obs::event(
                            fd_obs::Level::Error,
                            "ckpt.skipped_corrupt",
                            &[
                                ("path", path.display().to_string().into()),
                                ("error", why.clone().into()),
                            ],
                        );
                    }
                    let ckpt = &loaded.checkpoint;
                    checkpoint::verify_compatible(ckpt, dims, seed, &fingerprint).map_err(&at)?;
                    checkpoint::restore_params(&mut network.params, &ckpt.params).map_err(&at)?;
                    let state =
                        checkpoint::adam_from_entries(ckpt.opt_step, &ckpt.opt_m, &ckpt.opt_v)
                            .map_err(&at)?;
                    optimizer.restore_state(&network.params, &state).map_err(&at)?;
                    optimizer.set_lr(ckpt.lr as f32);
                    lr_halvings = ckpt.lr_halvings as u32;
                    report.losses = ckpt.losses.iter().map(|&l| l as f32).collect();
                    report.grad_norms = ckpt.grad_norms.iter().map(|&g| g as f32).collect();
                    // Wall-clock history is not durable state; replayed
                    // epochs read as 0 ms.
                    report.epoch_ms = vec![0.0; report.losses.len()];
                    since_best = ckpt.since_best as usize;
                    if let Some(acc) = ckpt.best_acc {
                        let mut best_params = network.params_snapshot();
                        checkpoint::restore_params(&mut best_params, &ckpt.best_params)
                            .map_err(&at)?;
                        best = Some((acc, best_params));
                    }
                    start_epoch = ckpt.epoch as usize;
                    fd_obs::counter("ckpt.resumes").inc();
                    fd_obs::event(
                        fd_obs::Level::Info,
                        "ckpt.resumed",
                        &[
                            ("path", loaded.path.display().to_string().into()),
                            ("epoch", start_epoch.into()),
                            ("skipped_corrupt", loaded.skipped.len().into()),
                        ],
                    );
                }
            }
        }
        // The divergence guard's rollback target. Captured at checkpoint
        // cadence (or every GUARD_EVERY epochs without a store), never
        // every epoch — see `GuardSnapshot`.
        let mut guard =
            GuardSnapshot::capture(start_epoch, &network, &optimizer, &best, since_best, &report);
        // One arena for every epoch: after the first epoch its capacity
        // settles at that epoch's node count, so later resets neither
        // reallocate nor re-zero.
        let tape = Tape::with_capacity(1 << 10);
        let mut epoch = start_epoch;
        while epoch < cfg.epochs {
            // Early stopping, checked at the loop head so a run resumed
            // from its final checkpoint does not train an extra epoch.
            if n_val > 0 && since_best >= cfg.patience {
                break;
            }
            let epoch_start = std::time::Instant::now();
            let _epoch_span = fd_obs::span("epoch");
            let epoch_trace = fit_trace_span.ctx().child();
            let epoch_start_us = fd_obs::trace::now_us();
            let mut phase = PhaseTimer::start(&epoch_trace);
            let mut epoch_val_acc: Option<f64> = None;
            let loss_value: f32;
            let norm: f32;
            let slot_losses: Option<[f64; 3]>;
            if let Some((batch_size, rounds, sampler)) = sampled_setup.as_ref() {
                let (batch_size, rounds) = (*batch_size, *rounds);
                // Deterministic per-epoch minibatch schedule: a fresh RNG
                // keyed on (seed, epoch) makes the shuffle a pure function
                // of durable state, so a checkpoint resume replays the
                // exact remaining batches.
                let mut order: Vec<usize> = (0..fit_items.len()).collect();
                let mut batch_rng = StdRng::seed_from_u64(
                    seed ^ BATCH_SHUFFLE_MIX
                        ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                order.shuffle(&mut batch_rng);

                let mut epoch_loss = 0.0f32;
                let mut epoch_norm = 0.0f32;
                let mut diverged = false;
                for (b, chunk) in order.chunks(batch_size).enumerate() {
                    tape.reset();
                    let binding = Binding::new(&tape, &network.params);
                    phase.reset();
                    // Per-batch sample salt; never collides with
                    // VAL_SAMPLE_SALT, which is reserved for the
                    // validation fixtures.
                    let salt = (epoch as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(b as u64 + 1);
                    let seeds: Vec<(NodeType, usize)> =
                        chunk.iter().map(|&k| (fit_items[k].0, fit_items[k].1)).collect();
                    let sub = sample_subgraph(&ctx.corpus.graph, sampler, &seeds, rounds, salt);
                    if let Some(h) = subgraph_nodes_hist {
                        h.record(sub.n_nodes() as f64);
                    }
                    if let Some(h) = subgraph_edges_hist {
                        h.record(sub.n_sampled_edges() as f64);
                    }
                    if let Some(h) = sampler_fanout_hist {
                        for list in sub
                            .subjects_of_article
                            .iter()
                            .chain(sub.articles_of_creator.iter())
                            .chain(sub.articles_of_subject.iter())
                        {
                            h.record(list.len() as f64);
                        }
                    }
                    phase.lap("train.sample", sample_us);

                    // Forward + loss over the compacted subgraph: the same
                    // stacked-logits assembly as the full-graph path, but
                    // rows address the subgraph's local index space, and
                    // the L2 term is scaled by the batch fraction so one
                    // epoch applies one full α·L2's worth of decay.
                    let states =
                        network.forward_states_subgraph(cfg, &binding, ctx, &sub, rounds);
                    let mut rows: [Vec<Option<usize>>; 3] = Default::default();
                    let mut batch_targets: Vec<usize> = Vec::with_capacity(chunk.len());
                    let mut within: Vec<usize> = Vec::with_capacity(chunk.len());
                    for (&k, &(slot, local)) in chunk.iter().zip(&sub.seed_rows) {
                        within.push(rows[slot].len());
                        rows[slot].push(Some(local));
                        batch_targets.push(fit_items[k].2);
                    }
                    let batch_offsets = {
                        let mut off = [0usize; 3];
                        let mut acc = 0;
                        for (o, r) in off.iter_mut().zip(&rows) {
                            *o = acc;
                            acc += r.len();
                        }
                        off
                    };
                    let batch_order: Vec<Option<usize>> = sub
                        .seed_rows
                        .iter()
                        .zip(&within)
                        .map(|(&(slot, _), &w)| Some(batch_offsets[slot] + w))
                        .collect();
                    let mut stacked: Option<Var> = None;
                    for slot in 0..3 {
                        if rows[slot].is_empty() {
                            continue;
                        }
                        let sel = tape.gather_rows(states[slot], &rows[slot]);
                        let logits = network.heads[slot].forward(&binding, sel);
                        stacked = Some(match stacked {
                            Some(s) => tape.concat_rows(s, logits),
                            None => logits,
                        });
                    }
                    let stacked = stacked.expect("chunks() never yields an empty batch");
                    let ordered = tape.gather_rows(stacked, &batch_order);
                    let ce = tape.softmax_cross_entropy_rows(ordered, &batch_targets);
                    let loss = if cfg.reg_alpha > 0.0 && !network.reg_ids.is_empty() {
                        let reg = binding.l2_term(&network.reg_ids);
                        let frac = chunk.len() as f32 / fit_items.len() as f32;
                        tape.add(ce, tape.scale(reg, cfg.reg_alpha * frac))
                    } else {
                        ce
                    };
                    phase.lap("train.forward", forward_us);

                    tape.backward(loss);
                    let mut grads = binding.grads();
                    phase.lap("train.backward", backward_us);
                    let batch_norm = clip_global_norm(&mut grads, cfg.clip);
                    phase.lap("train.clip", clip_us);
                    let batch_loss = tape.with_value(loss, |m| m[(0, 0)]);
                    drop(binding);
                    if !batch_loss.is_finite() || !batch_norm.is_finite() {
                        diverged = true;
                        break;
                    }
                    phase.reset();
                    // Sparse Adam: parameter rows outside this subgraph
                    // received no gradient and are skipped outright, so
                    // step cost tracks the subgraph, not the corpus.
                    optimizer.apply_sparse(&mut network.params, &grads);
                    phase.lap("train.optimizer", optimizer_us);
                    epoch_loss += batch_loss;
                    epoch_norm = epoch_norm.max(batch_norm);
                }
                if diverged {
                    if !rollback_divergence(
                        &mut network,
                        &mut optimizer,
                        &guard,
                        &mut best,
                        &mut since_best,
                        &mut report,
                        &mut epoch,
                        &mut lr_halvings,
                    ) {
                        break;
                    }
                    continue;
                }

                // Validation over the fixed pre-sampled chunks. Unlike
                // the full-graph path (which reads validation states off
                // the pre-update training forward for free), this
                // measures the *post*-update weights — there is no single
                // epoch-wide forward pass to piggyback on.
                if let Some(chunks) = &val_fixture {
                    phase.reset();
                    let mut correct = [0usize; 3];
                    let mut total = [0usize; 3];
                    for (sub, local_items) in chunks {
                        tape.reset();
                        let binding = Binding::new(&tape, &network.params);
                        let states =
                            network.forward_states_subgraph(cfg, &binding, ctx, sub, rounds);
                        let mats = [
                            tape.value(states[0]),
                            tape.value(states[1]),
                            tape.value(states[2]),
                        ];
                        drop(binding);
                        accumulate_validation(
                            &network,
                            &mats,
                            local_items,
                            &mut correct,
                            &mut total,
                        );
                    }
                    let acc = macro_accuracy(&correct, &total);
                    epoch_val_acc = Some(acc);
                    if best.as_ref().is_none_or(|(b, _)| acc > *b) {
                        best = Some((acc, network.params_snapshot()));
                        since_best = 0;
                    } else {
                        since_best += 1;
                    }
                    phase.lap("train.validate", validate_us);
                }
                loss_value = epoch_loss;
                norm = epoch_norm;
                slot_losses = None;
            } else {
            tape.reset();
            let binding = Binding::new(&tape, &network.params);
            let want_slot_losses = fd_obs::enabled(fd_obs::Level::Info);

            // The paper's objective: L(T_n) + L(T_u) + L(T_s) + α L_reg,
            // recorded either as one matrix-valued graph per node type
            // (batched) or one tape variable per node (reference).
            let (loss, epoch_slot_losses, val_states) = if cfg.batched_training {
                let states = network.forward_states_batched(cfg, &binding, ctx);
                let mut stacked: Option<Var> = None;
                for slot in 0..3 {
                    if fit_rows[slot].is_empty() {
                        continue;
                    }
                    let sel = tape.gather_rows(states[slot], &fit_rows[slot]);
                    let logits = network.heads[slot].forward(&binding, sel);
                    stacked = Some(match stacked {
                        Some(s) => tape.concat_rows(s, logits),
                        None => logits,
                    });
                }
                let stacked = stacked.expect("non-empty training set");
                let ordered = tape.gather_rows(stacked, &stack_order);
                let ce = tape.softmax_cross_entropy_rows(ordered, &targets);
                let loss = if cfg.reg_alpha > 0.0 && !network.reg_ids.is_empty() {
                    let reg = binding.l2_term(&network.reg_ids);
                    tape.add(ce, tape.scale(reg, cfg.reg_alpha))
                } else {
                    ce
                };
                // Per-entity-type loss decomposition, recomputed from the
                // cached logits only when someone is listening.
                let slot_losses: Option<[f64; 3]> = want_slot_losses.then(|| {
                    tape.with_value(ordered, |logits| {
                        let mut sums = [0.0f64; 3];
                        for (k, &(ty, _, _)) in fit_items.iter().enumerate() {
                            let mut row = logits.row(k).to_vec();
                            fd_tensor::softmax_in_place(&mut row);
                            sums[type_slot(ty)] += f64::from(-row[targets[k]].max(1e-12).ln());
                        }
                        sums
                    })
                });
                // Validation reads the pre-update states straight off the
                // tape; no per-item validation variables are recorded.
                let val_states = (n_val > 0)
                    .then(|| [tape.value(states[0]), tape.value(states[1]), tape.value(states[2])]);
                (loss, slot_losses, val_states)
            } else {
                let states = network.forward_states(cfg, &binding, ctx);
                let mut losses: Vec<Var> = Vec::with_capacity(fit_items.len() + 1);
                for &(ty, idx, target) in fit_items {
                    let slot = type_slot(ty);
                    let logits = network.heads[slot].forward(&binding, states[slot][idx]);
                    losses.push(tape.softmax_cross_entropy(logits, target));
                }
                if cfg.reg_alpha > 0.0 && !network.reg_ids.is_empty() {
                    let reg = binding.l2_term(&network.reg_ids);
                    losses.push(tape.scale(reg, cfg.reg_alpha));
                }
                let loss = tape.sum_n(&losses);
                // `losses[i]` pairs with `fit_items[i]`; the optional
                // trailing reg term falls off the zip.
                let slot_losses: Option<[f64; 3]> = want_slot_losses.then(|| {
                    let mut sums = [0.0f64; 3];
                    for (&(ty, _, _), &item_loss) in fit_items.iter().zip(&losses) {
                        sums[type_slot(ty)] +=
                            f64::from(tape.with_value(item_loss, |m| m[(0, 0)]));
                    }
                    sums
                });
                // Tape-free recompute of the same pre-update states keeps
                // per-item validation variables off the training tape.
                let val_states = (n_val > 0).then(|| network.forward_states_matrix(cfg, ctx));
                (loss, slot_losses, val_states)
            };
            phase.lap("train.forward", forward_us);

            tape.backward(loss);
            let mut grads = binding.grads();
            phase.lap("train.backward", backward_us);
            norm = clip_global_norm(&mut grads, cfg.clip);
            phase.lap("train.clip", clip_us);
            loss_value = tape.with_value(loss, |m| m[(0, 0)]);

            // Divergence guard: a non-finite loss or gradient norm means
            // this step (and possibly a few before it) blew up. Clipping
            // deliberately leaves non-finite gradients untouched (see
            // `clip_global_norm`), so applying them would poison every
            // weight. Roll back to the last snapshot and retry from
            // there with a halved learning rate.
            if !loss_value.is_finite() || !norm.is_finite() {
                drop(binding);
                if !rollback_divergence(
                    &mut network,
                    &mut optimizer,
                    &guard,
                    &mut best,
                    &mut since_best,
                    &mut report,
                    &mut epoch,
                    &mut lr_halvings,
                ) {
                    break;
                }
                continue;
            }

            // Validation accuracy from the pre-update forward pass,
            // macro-averaged over entity types so the article-heavy
            // validation pool does not drown out creators/subjects.
            if let Some(states) = &val_states {
                phase.reset();
                let acc = validation_accuracy(&network, states, val_items);
                epoch_val_acc = Some(acc);
                if best.as_ref().is_none_or(|(b, _)| acc > *b) {
                    best = Some((acc, network.params_snapshot()));
                    since_best = 0;
                } else {
                    since_best += 1;
                }
                phase.lap("train.validate", validate_us);
            }

            drop(binding);
            phase.reset();
            optimizer.apply(&mut network.params, &grads);
            phase.lap("train.optimizer", optimizer_us);
            slot_losses = epoch_slot_losses;
            }
            report.losses.push(loss_value);
            report.grad_norms.push(norm);

            epochs_run.inc();
            let epoch_elapsed = epoch_start.elapsed().as_secs_f64();
            report.epoch_ms.push(epoch_elapsed * 1e3);
            epoch_us.record(epoch_elapsed * 1e6);
            fd_obs::gauge("train.loss").set(f64::from(loss_value));
            fd_obs::gauge("train.grad_norm").set(f64::from(norm));
            fd_obs::gauge("train.lr").set(f64::from(optimizer.lr()));
            if fd_obs::enabled(fd_obs::Level::Info) {
                let mut fields: Vec<(&str, fd_obs::Value)> = vec![
                    ("epoch", epoch.into()),
                    ("loss", loss_value.into()),
                ];
                // Slot decomposition exists only on the full-graph path;
                // sampled epochs report the summed minibatch losses.
                if let Some([la, lc, ls]) = slot_losses {
                    fields.push(("loss_articles", la.into()));
                    fields.push(("loss_creators", lc.into()));
                    fields.push(("loss_subjects", ls.into()));
                }
                fields.push(("grad_norm", norm.into()));
                fields.push(("lr", optimizer.lr().into()));
                fields.push(("epoch_ms", (epoch_elapsed * 1e3).into()));
                if let Some(acc) = epoch_val_acc {
                    fields.push(("val_acc", acc.into()));
                }
                fd_obs::event(fd_obs::Level::Info, "train.epoch", &fields);
            }

            epoch += 1;
            // Durable checkpoint at the configured cadence, and always
            // at the final epoch (count exhausted or early stop) so a
            // finished run leaves its end state on disk.
            let stopping =
                epoch == cfg.epochs || (n_val > 0 && since_best >= cfg.patience);
            if let Some(store) = &store {
                if epoch.is_multiple_of(options.every()) || stopping {
                    phase.reset();
                    save_checkpoint(
                        store,
                        epoch,
                        &network,
                        &optimizer,
                        &report,
                        &best,
                        since_best,
                        lr_halvings,
                        seed,
                        dims,
                        &fingerprint,
                    )?;
                    phase.lap("train.checkpoint", checkpoint_us);
                    guard = GuardSnapshot::capture(
                        epoch,
                        &network,
                        &optimizer,
                        &best,
                        since_best,
                        &report,
                    );
                    // Deterministic crash injection for recovery tests:
                    // dies *after* the durable save, exactly where a real
                    // SIGKILL would leave a resumable run.
                    if fd_ckpt::fault::kill_after_ckpt(epoch as u64) {
                        std::process::abort();
                    }
                }
            } else if epoch.is_multiple_of(GUARD_EVERY) {
                guard = GuardSnapshot::capture(
                    epoch,
                    &network,
                    &optimizer,
                    &best,
                    since_best,
                    &report,
                );
            }
            if epoch_trace.sampled {
                epoch_trace.record(
                    "train.epoch",
                    epoch_start_us,
                    fd_obs::trace::now_us().saturating_sub(epoch_start_us),
                );
            }
        }
        if let Some((_, best_params)) = best {
            network.params = best_params;
        }

        Ok(TrainedFakeDetector::from_parts(self.config.clone(), dims, seed, network, report))
    }

    /// Trains and predicts, also returning the loss curve — used by the
    /// examples and the ablation harness; `fit_predict` discards it.
    pub fn fit_predict_with_report(
        &self,
        ctx: &ExperimentContext<'_>,
    ) -> (Predictions, TrainReport) {
        let trained = self.fit(ctx);
        let predictions = trained.predict(ctx);
        let report = trained.report().clone();
        (predictions, report)
    }
}

impl CredibilityModel for FakeDetector {
    fn name(&self) -> &'static str {
        "FakeDetector"
    }

    fn fit_predict(&self, ctx: &ExperimentContext<'_>) -> Predictions {
        self.fit_predict_with_report(ctx).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_data::{
        generate, CvSplits, ExplicitFeatures, GeneratorConfig, LabelMode, TokenizedCorpus,
        TrainSets,
    };
    use rand::{rngs::StdRng, SeedableRng};

    struct Fixture {
        corpus: fd_data::Corpus,
        tokenized: TokenizedCorpus,
        explicit: ExplicitFeatures,
        train: TrainSets,
    }

    fn fixture() -> Fixture {
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), 7);
        let tokenized = TokenizedCorpus::build(&corpus, 12, 3000);
        let mut rng = StdRng::seed_from_u64(6);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
        };
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
        Fixture { corpus, tokenized, explicit, train }
    }

    fn make_ctx(f: &Fixture, seed: u64) -> ExperimentContext<'_> {
        ExperimentContext {
            corpus: &f.corpus,
            tokenized: &f.tokenized,
            explicit: &f.explicit,
            train: &f.train,
            mode: LabelMode::Binary,
            seed,
        }
    }

    /// One training-objective evaluation (forward + backward, no update):
    /// the batched matrix path or the per-node reference path, over the
    /// unshuffled train items. Returns the scalar loss and the gradients.
    fn epoch_grads(
        config: &FakeDetectorConfig,
        ctx: &ExperimentContext<'_>,
        batched: bool,
    ) -> (f32, Vec<(fd_nn::ParamId, Matrix)>) {
        let dims = NetworkDims {
            vocab: ctx.tokenized.vocab.id_space(),
            explicit_dim: ctx.explicit.dim,
            n_classes: ctx.n_classes(),
        };
        let network = Network::build(config, dims, Params::new(), 21);
        let tape = Tape::new();
        let binding = Binding::new(&tape, &network.params);
        let items = ctx.train_items();
        let loss = if batched {
            let states = network.forward_states_batched(config, &binding, ctx);
            let mut fit_rows: [Vec<Option<usize>>; 3] = Default::default();
            let mut targets = Vec::new();
            let mut within = Vec::new();
            for &(ty, idx, target) in &items {
                let slot = type_slot(ty);
                within.push(fit_rows[slot].len());
                fit_rows[slot].push(Some(idx));
                targets.push(target);
            }
            let offsets = [0, fit_rows[0].len(), fit_rows[0].len() + fit_rows[1].len()];
            let order: Vec<Option<usize>> = items
                .iter()
                .zip(&within)
                .map(|(&(ty, _, _), &w)| Some(offsets[type_slot(ty)] + w))
                .collect();
            let mut stacked: Option<Var> = None;
            for slot in 0..3 {
                if fit_rows[slot].is_empty() {
                    continue;
                }
                let sel = tape.gather_rows(states[slot], &fit_rows[slot]);
                let logits = network.heads[slot].forward(&binding, sel);
                stacked = Some(match stacked {
                    Some(s) => tape.concat_rows(s, logits),
                    None => logits,
                });
            }
            let ordered = tape.gather_rows(stacked.unwrap(), &order);
            let ce = tape.softmax_cross_entropy_rows(ordered, &targets);
            let reg = binding.l2_term(&network.reg_ids);
            tape.add(ce, tape.scale(reg, config.reg_alpha))
        } else {
            let states = network.forward_states(config, &binding, ctx);
            let mut losses: Vec<Var> = Vec::new();
            for &(ty, idx, target) in &items {
                let slot = type_slot(ty);
                let logits = network.heads[slot].forward(&binding, states[slot][idx]);
                losses.push(tape.softmax_cross_entropy(logits, target));
            }
            let reg = binding.l2_term(&network.reg_ids);
            losses.push(tape.scale(reg, config.reg_alpha));
            tape.sum_n(&losses)
        };
        tape.backward(loss);
        let loss_value = tape.with_value(loss, |m| m[(0, 0)]);
        (loss_value, binding.grads())
    }

    fn assert_grads_close(
        a: &[(fd_nn::ParamId, Matrix)],
        b: &[(fd_nn::ParamId, Matrix)],
        rtol: f32,
        atol: f32,
    ) {
        assert_eq!(a.len(), b.len(), "gradient count mismatch");
        for ((id_a, ga), (id_b, gb)) in a.iter().zip(b) {
            assert_eq!(id_a, id_b);
            assert_eq!(ga.shape(), gb.shape());
            for (r, (x, y)) in ga.as_slice().iter().zip(gb.as_slice()).enumerate() {
                let tol = atol + rtol * x.abs().max(y.abs());
                assert!(
                    (x - y).abs() <= tol,
                    "grad mismatch for param {} at flat index {r}: {x} vs {y} (tol {tol})",
                    id_a.index()
                );
            }
        }
    }

    /// Tentpole contract: the batched epoch's loss is bit-equal to the
    /// per-node tape's, and every parameter gradient agrees within
    /// floating-point reassociation tolerance.
    #[test]
    fn batched_epoch_matches_per_node_loss_and_gradients() {
        let f = fixture();
        let ctx = make_ctx(&f, 13);
        let config = FakeDetectorConfig::default();
        let (loss_ref, grads_ref) = epoch_grads(&config, &ctx, false);
        let (loss_bat, grads_bat) = epoch_grads(&config, &ctx, true);
        assert_eq!(
            loss_ref.to_bits(),
            loss_bat.to_bits(),
            "loss must be bit-comparable: {loss_ref} vs {loss_bat}"
        );
        assert_grads_close(&grads_bat, &grads_ref, 1e-4, 1e-6);
    }

    /// The batched epoch's gradients must not depend on the thread
    /// count: `FD_THREADS` changes wall-clock only.
    #[test]
    fn batched_gradients_are_bitwise_thread_invariant() {
        let f = fixture();
        let ctx = make_ctx(&f, 13);
        let config = FakeDetectorConfig::default();
        let run = |threads| {
            fd_tensor::parallel::with_thread_count(threads, || epoch_grads(&config, &ctx, true))
        };
        let (loss_1, grads_1) = run(1);
        let (loss_4, grads_4) = run(4);
        assert_eq!(loss_1.to_bits(), loss_4.to_bits());
        for ((id_a, ga), (id_b, gb)) in grads_1.iter().zip(&grads_4) {
            assert_eq!(id_a, id_b);
            assert_eq!(ga.as_slice(), gb.as_slice(), "param {} grads", id_a.index());
        }
    }

    /// The batched tape states must be bitwise identical to both the
    /// per-node tape states and the tape-free matrix states.
    #[test]
    fn forward_states_batched_is_bitwise_identical_to_tape_and_matrix() {
        let f = fixture();
        let ctx = make_ctx(&f, 13);
        let config = FakeDetectorConfig::default();
        let dims = NetworkDims {
            vocab: ctx.tokenized.vocab.id_space(),
            explicit_dim: ctx.explicit.dim,
            n_classes: ctx.n_classes(),
        };
        let network = Network::build(&config, dims, Params::new(), 21);

        let tape = Tape::with_capacity(1 << 16);
        let binding = Binding::new(&tape, &network.params);
        let per_node = network.forward_states(&config, &binding, &ctx);
        let batched = network.forward_states_batched(&config, &binding, &ctx);
        let matrix = network.forward_states_matrix(&config, &ctx);

        for slot in 0..3 {
            tape.with_value(batched[slot], |bat| {
                assert_eq!(bat.rows(), per_node[slot].len());
                assert_eq!(bat.as_slice(), matrix[slot].as_slice(), "slot {slot} vs matrix");
                for (i, &var) in per_node[slot].iter().enumerate() {
                    tape.with_value(var, |m| {
                        assert_eq!(m.row(0), bat.row(i), "slot {slot}, node {i}");
                    });
                }
            });
        }
    }

    // Parity must hold across ablations, graph shapes and seeds —
    // including graphs where some articles have no subjects/author and
    // the gate/diffusion switches reroute the GDU inputs.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

        #[test]
        fn batched_parity_across_seeds_and_ablations(
            seed in 0u64..50,
            use_diffusion in proptest::prelude::any::<bool>(),
            use_gates in proptest::prelude::any::<bool>(),
            rounds in 1usize..3,
        ) {
            let corpus = generate(&GeneratorConfig::politifact().scaled(0.008), seed);
            let tokenized = TokenizedCorpus::build(&corpus, 10, 2000);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
            let train = TrainSets {
                articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
                creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
                subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
            };
            let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 30);
            let f = Fixture { corpus, tokenized, explicit, train };
            let ctx = make_ctx(&f, seed ^ 0xc0ffee);
            let config = FakeDetectorConfig {
                use_diffusion,
                use_gates,
                diffusion_rounds: rounds,
                ..FakeDetectorConfig::default()
            };
            let (loss_ref, grads_ref) = epoch_grads(&config, &ctx, false);
            let (loss_bat, grads_bat) = epoch_grads(&config, &ctx, true);
            proptest::prop_assert_eq!(
                loss_ref.to_bits(),
                loss_bat.to_bits(),
                "loss {} vs {} (seed {}, diffusion {}, gates {}, rounds {})",
                loss_ref,
                loss_bat,
                seed,
                use_diffusion,
                use_gates,
                rounds
            );
            assert_grads_close(&grads_bat, &grads_ref, 1e-4, 1e-6);
        }
    }

    /// A subgraph that covers the whole graph (every node seeded, fanout
    /// unbounded) must be indistinguishable from the full-graph forward:
    /// the compacted index space degenerates to the identity and every
    /// sampled adjacency list is the complete CSR list, so the sampled
    /// forward must reproduce `forward_states_batched` bitwise.
    #[test]
    fn full_coverage_subgraph_forward_matches_batched_bitwise() {
        let f = fixture();
        let ctx = make_ctx(&f, 13);
        let config = FakeDetectorConfig::default();
        let dims = NetworkDims {
            vocab: ctx.tokenized.vocab.id_space(),
            explicit_dim: ctx.explicit.dim,
            n_classes: ctx.n_classes(),
        };
        let network = Network::build(&config, dims, Params::new(), 21);

        // Seed every node of every type in index order: interning then
        // maps each global index to itself.
        let mut seeds: Vec<(NodeType, usize)> = Vec::new();
        seeds.extend((0..f.corpus.articles.len()).map(|i| (NodeType::Article, i)));
        seeds.extend((0..f.corpus.creators.len()).map(|u| (NodeType::Creator, u)));
        seeds.extend((0..f.corpus.subjects.len()).map(|s| (NodeType::Subject, s)));
        let sampler = NeighborSampler::new(99, [usize::MAX; 3]);
        let sub = sample_subgraph(&f.corpus.graph, &sampler, &seeds, 0, 3);
        for (slot, n) in [
            f.corpus.articles.len(),
            f.corpus.creators.len(),
            f.corpus.subjects.len(),
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(sub.nodes[slot], (0..*n).collect::<Vec<_>>(), "slot {slot} compaction");
        }

        let tape = Tape::with_capacity(1 << 16);
        let binding = Binding::new(&tape, &network.params);
        let batched = network.forward_states_batched(&config, &binding, &ctx);
        let sampled =
            network.forward_states_subgraph(&config, &binding, &ctx, &sub, config.diffusion_rounds);
        for slot in 0..3 {
            let b = tape.value(batched[slot]);
            let s = tape.value(sampled[slot]);
            assert_eq!(b.shape(), s.shape(), "slot {slot} shape");
            for (i, (x, y)) in b.as_slice().iter().zip(s.as_slice()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "slot {slot}, flat index {i}: {x} vs {y}"
                );
            }
        }
    }

    /// The batched forward must reproduce the tape forward *bitwise*,
    /// state by state — not just up to arg-max. This is the contract the
    /// blocked matmul's fixed reduction order exists to uphold.
    #[test]
    fn forward_states_matrix_is_bitwise_identical_to_tape() {
        let f = fixture();
        let ctx = ExperimentContext {
            corpus: &f.corpus,
            tokenized: &f.tokenized,
            explicit: &f.explicit,
            train: &f.train,
            mode: LabelMode::Binary,
            seed: 13,
        };
        let config = FakeDetectorConfig::default();
        let dims = NetworkDims {
            vocab: ctx.tokenized.vocab.id_space(),
            explicit_dim: ctx.explicit.dim,
            n_classes: ctx.n_classes(),
        };
        let network = Network::build(&config, dims, Params::new(), 21);

        let tape = Tape::with_capacity(1 << 16);
        let binding = Binding::new(&tape, &network.params);
        let tape_states = network.forward_states(&config, &binding, &ctx);
        let batched = network.forward_states_matrix(&config, &ctx);

        for slot in 0..3 {
            assert_eq!(batched[slot].rows(), tape_states[slot].len());
            for (i, &var) in tape_states[slot].iter().enumerate() {
                tape.with_value(var, |m| {
                    for (j, (&a, &b)) in m.row(0).iter().zip(batched[slot].row(i)).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "state mismatch at slot {slot}, node {i}, dim {j}: {a} vs {b}"
                        );
                    }
                });
            }
        }
    }
}

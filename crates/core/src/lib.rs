//! **FakeDetector** — the paper's primary contribution (Section 4).
//!
//! The model infers credibility labels for news articles, creators and
//! subjects *simultaneously* over the News-HSN. Three components:
//!
//! 1. [`Hflu`] — the Hybrid Feature Learning Unit (§4.1). Per node type,
//!    the explicit χ² bag-of-words feature `x^e` is concatenated with a
//!    latent feature `x^l = σ(W Σ_t h_t)` from a GRU over the token
//!    sequence.
//! 2. [`GduCell`] — the Gated Diffusive Unit (§4.2). Accepts the
//!    entity's own features `x` plus the diffused states of its
//!    neighbours of the other node types (`z`, `t`), filters them with a
//!    *forget* gate and an *adjust* gate, and blends four candidate
//!    states through two selection gates.
//! 3. [`FakeDetector`] — the deep diffusive network (§4.3). One HFLU +
//!    GDU + soft-max head per node type; the GDU layer is unrolled for a
//!    configurable number of diffusion rounds (the paper's Figure 3(c)
//!    data-flow loops, made explicit); training minimises
//!    `L(T_n) + L(T_u) + L(T_s) + α L_reg(W)` with Adam and global-norm
//!    clipping, exactly end to end through the whole graph.
//!
//! ```no_run
//! use fd_core::{FakeDetector, FakeDetectorConfig};
//! use fd_data::{generate, CredibilityModel, GeneratorConfig};
//! // ... build an ExperimentContext (see the `fd-data` docs) ...
//! # fn ctx() -> fd_data::ExperimentContext<'static> { unimplemented!() }
//! let model = FakeDetector::new(FakeDetectorConfig::default());
//! let predictions = model.fit_predict(&ctx());
//! ```

mod checkpoint;
mod config;
mod gdu;
mod hflu;
mod incremental;
mod model;
mod sampled;
mod trained;

pub use checkpoint::FitOptions;
pub use config::{FakeDetectorConfig, TrainMode};
pub use gdu::{GduCell, QuantGdu};
pub use hflu::Hflu;
pub use incremental::{RoundDelta, StateOverlay, StateView};
pub use model::{FakeDetector, TrainReport};
pub use trained::{QuantModel, ScoreRequest, TrainedFakeDetector};

/// A [`TrainedFakeDetector`] is a plain-data weight store, so one
/// instance can be shared across serving threads behind an `Arc`;
/// the serving layer's batcher thread relies on this.
const _ASSERT_TRAINED_IS_SHAREABLE: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TrainedFakeDetector>()
};

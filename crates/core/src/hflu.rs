//! The Hybrid Feature Learning Unit (Section 4.1, Figure 3(a)).
//!
//! `x_i = [(x^e_i)ᵀ, (x^l_i)ᵀ]ᵀ`: the explicit χ² bag-of-words feature
//! (precomputed in `fd_data::ExplicitFeatures`, entering the tape as a
//! constant) concatenated with the latent feature from a GRU over the
//! token sequence with a sigmoid fusion layer (`fd_nn::GruEncoder`).

use crate::FakeDetectorConfig;
use fd_autograd::Var;
use fd_data::ExperimentContext;
use fd_graph::NodeType;
use fd_nn::{Binding, GruEncoder, ParamId, Params};
use fd_tensor::Matrix;
use fd_text::PAD_ID;
use rand::Rng;

/// One node type's HFLU: the latent encoder plus the ablation switches.
#[derive(Debug, Clone)]
pub struct Hflu {
    encoder: Option<GruEncoder>,
    use_explicit: bool,
    out_dim: usize,
    node_type: NodeType,
}

impl Hflu {
    /// Builds the HFLU for one node type. The GRU encoder is only
    /// allocated when the latent half is enabled.
    pub fn new(
        params: &mut Params,
        name: &str,
        node_type: NodeType,
        vocab_size: usize,
        explicit_dim: usize,
        config: &FakeDetectorConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let encoder = config.use_latent.then(|| {
            GruEncoder::new(
                params,
                &format!("{name}.encoder"),
                vocab_size,
                config.embed_dim,
                config.gru_hidden,
                config.latent_dim,
                PAD_ID,
                rng,
            )
        });
        Self {
            encoder,
            use_explicit: config.use_explicit,
            out_dim: config.hflu_out_dim(explicit_dim),
            node_type,
        }
    }

    /// Encodes entity `idx`: `[x^e | x^l]` as a `1 x out_dim` row.
    pub fn encode(&self, bind: &Binding, ctx: &ExperimentContext<'_>, idx: usize) -> Var {
        self.encode_raw(
            bind,
            ctx.explicit.feature(self.node_type, idx).clone(),
            ctx.tokenized.sequence(self.node_type, idx),
        )
    }

    /// Encodes raw inputs — an explicit feature row plus a token-id
    /// sequence — for entities that are not part of the corpus (the
    /// inductive new-article path of `TrainedFakeDetector`).
    pub fn encode_raw(&self, bind: &Binding, explicit_row: Matrix, sequence: &[usize]) -> Var {
        let tape = bind.tape();
        let explicit = self.use_explicit.then(|| tape.leaf(explicit_row));
        let latent = self.encoder.as_ref().map(|enc| enc.encode(bind, sequence));
        match (explicit, latent) {
            (Some(e), Some(l)) => tape.concat_cols(e, l),
            (Some(e), None) => e,
            (None, Some(l)) => l,
            (None, None) => unreachable!("config validation forbids both halves off"),
        }
    }

    /// Tape-free batched twin of [`Hflu::encode_raw`]: encodes `n`
    /// out-of-corpus entities at once from their raw inputs — an
    /// `n x explicit_dim` feature matrix plus one token-id sequence per
    /// row. Row `i` is bit-identical to the tape value of
    /// `encode_raw(bind, explicit_rows.row(i), sequences[i])`: the GRU
    /// batch encoder replays the per-node schedule exactly and the
    /// explicit half is copied verbatim, so batching requests together
    /// never changes any individual answer. This is the entry point of
    /// the serving layer's micro-batched inductive scoring.
    pub fn encode_raw_batch(
        &self,
        params: &Params,
        explicit_rows: Matrix,
        sequences: &[&[usize]],
    ) -> Matrix {
        debug_assert_eq!(explicit_rows.rows(), sequences.len(), "HFLU raw batch mismatch");
        let explicit = self.use_explicit.then_some(explicit_rows);
        let latent = self.encoder.as_ref().map(|enc| enc.encode_batch(params, sequences));
        match (explicit, latent) {
            (Some(e), Some(l)) => e.concat_cols(&l),
            (Some(e), None) => e,
            (None, Some(l)) => l,
            (None, None) => unreachable!("config validation forbids both halves off"),
        }
    }

    /// Tape-free batched twin of [`Hflu::encode`]: encodes entities
    /// `0..count` of this node type at once, one `out_dim` row each.
    /// Row `i` is bit-identical to the tape value of `encode(bind, ctx, i)`.
    pub fn encode_batch(
        &self,
        params: &Params,
        ctx: &ExperimentContext<'_>,
        count: usize,
    ) -> Matrix {
        let explicit = self.use_explicit.then(|| {
            let dim =
                if count == 0 { 0 } else { ctx.explicit.feature(self.node_type, 0).cols() };
            let mut rows = Matrix::zeros(count, dim);
            for i in 0..count {
                rows.row_mut(i)
                    .copy_from_slice(ctx.explicit.feature(self.node_type, i).row(0));
            }
            rows
        });
        let latent = self.encoder.as_ref().map(|enc| {
            let sequences: Vec<&[usize]> =
                (0..count).map(|i| ctx.tokenized.sequence(self.node_type, i)).collect();
            enc.encode_batch(params, &sequences)
        });
        match (explicit, latent) {
            (Some(e), Some(l)) => e.concat_cols(&l),
            (Some(e), None) => e,
            (None, Some(l)) => l,
            (None, None) => unreachable!("config validation forbids both halves off"),
        }
    }

    /// Tape-recorded batched twin of [`Hflu::encode`]: one
    /// `count x out_dim` variable for entities `0..count` of this node
    /// type. Row `i` is bit-identical to the tape value of
    /// `encode(bind, ctx, i)`, and the backward pass reaches the same
    /// encoder parameters the per-node tape would.
    pub fn encode_batch_tape(
        &self,
        bind: &Binding,
        ctx: &ExperimentContext<'_>,
        count: usize,
    ) -> fd_autograd::Var {
        let tape = bind.tape();
        let explicit = self.use_explicit.then(|| {
            let mut rows = Matrix::zeros(count, ctx.explicit.dim);
            for i in 0..count {
                rows.row_mut(i)
                    .copy_from_slice(ctx.explicit.feature(self.node_type, i).row(0));
            }
            tape.leaf(rows)
        });
        let latent = self.encoder.as_ref().map(|enc| {
            let sequences: Vec<&[usize]> =
                (0..count).map(|i| ctx.tokenized.sequence(self.node_type, i)).collect();
            enc.encode_batch_tape(bind, &sequences)
        });
        match (explicit, latent) {
            (Some(e), Some(l)) => tape.concat_cols(e, l),
            (Some(e), None) => e,
            (None, Some(l)) => l,
            (None, None) => unreachable!("config validation forbids both halves off"),
        }
    }

    /// Tape-free twin of [`Hflu::encode_batch`] over an arbitrary
    /// entity subset instead of the contiguous prefix `0..count`: one
    /// `indices.len() x out_dim` matrix whose row `k` is bit-identical
    /// to row `indices[k]` of `encode_batch`. Incremental ingestion
    /// uses this to re-encode only the affected base nodes, so a delta
    /// update's HFLU cost scales with the affected set, not the corpus.
    pub fn encode_subset(
        &self,
        params: &Params,
        ctx: &ExperimentContext<'_>,
        indices: &[usize],
    ) -> Matrix {
        let explicit = self.use_explicit.then(|| {
            let mut rows = Matrix::zeros(indices.len(), ctx.explicit.dim);
            for (k, &i) in indices.iter().enumerate() {
                rows.row_mut(k)
                    .copy_from_slice(ctx.explicit.feature(self.node_type, i).row(0));
            }
            rows
        });
        let latent = self.encoder.as_ref().map(|enc| {
            let sequences: Vec<&[usize]> = indices
                .iter()
                .map(|&i| ctx.tokenized.sequence(self.node_type, i))
                .collect();
            enc.encode_batch(params, &sequences)
        });
        match (explicit, latent) {
            (Some(e), Some(l)) => e.concat_cols(&l),
            (Some(e), None) => e,
            (None, Some(l)) => l,
            (None, None) => unreachable!("config validation forbids both halves off"),
        }
    }

    /// Tape-recorded twin of [`Hflu::encode_batch_tape`] over an
    /// arbitrary entity subset instead of the contiguous prefix
    /// `0..count`: one `indices.len() x out_dim` variable whose row `k`
    /// is bit-identical to the tape value of
    /// `encode(bind, ctx, indices[k])`. This is the sampled-minibatch
    /// entry point — a subgraph's compacted node set encodes only its
    /// own members, so HFLU cost per step scales with the subgraph, not
    /// the corpus.
    pub fn encode_subset_tape(
        &self,
        bind: &Binding,
        ctx: &ExperimentContext<'_>,
        indices: &[usize],
    ) -> fd_autograd::Var {
        let tape = bind.tape();
        let explicit = self.use_explicit.then(|| {
            let mut rows = Matrix::zeros(indices.len(), ctx.explicit.dim);
            for (k, &i) in indices.iter().enumerate() {
                rows.row_mut(k)
                    .copy_from_slice(ctx.explicit.feature(self.node_type, i).row(0));
            }
            tape.leaf(rows)
        });
        let latent = self.encoder.as_ref().map(|enc| {
            let sequences: Vec<&[usize]> = indices
                .iter()
                .map(|&i| ctx.tokenized.sequence(self.node_type, i))
                .collect();
            enc.encode_batch_tape(bind, &sequences)
        });
        match (explicit, latent) {
            (Some(e), Some(l)) => tape.concat_cols(e, l),
            (Some(e), None) => e,
            (None, Some(l)) => l,
            (None, None) => unreachable!("config validation forbids both halves off"),
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Trainable parameter handles (empty in the explicit-only ablation).
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.encoder.as_ref().map(GruEncoder::param_ids).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_autograd::Tape;
    use fd_data::{
        generate, CvSplits, ExplicitFeatures, GeneratorConfig, LabelMode, TokenizedCorpus,
        TrainSets,
    };
    use rand::{rngs::StdRng, SeedableRng};

    struct Fixture {
        corpus: fd_data::Corpus,
        tokenized: TokenizedCorpus,
        explicit: ExplicitFeatures,
        train: TrainSets,
    }

    fn fixture() -> Fixture {
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), 3);
        let tokenized = TokenizedCorpus::build(&corpus, 12, 3000);
        let mut rng = StdRng::seed_from_u64(1);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
        };
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
        Fixture { corpus, tokenized, explicit, train }
    }

    fn ctx(f: &Fixture) -> ExperimentContext<'_> {
        ExperimentContext {
            corpus: &f.corpus,
            tokenized: &f.tokenized,
            explicit: &f.explicit,
            train: &f.train,
            mode: LabelMode::Binary,
            seed: 1,
        }
    }

    #[test]
    fn full_hflu_concatenates_both_halves() {
        let f = fixture();
        let c = ctx(&f);
        let config = FakeDetectorConfig::default();
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(2);
        let hflu = Hflu::new(
            &mut params,
            "hflu.article",
            NodeType::Article,
            c.tokenized.vocab.id_space(),
            40,
            &config,
            &mut rng,
        );
        assert_eq!(hflu.out_dim(), 40 + config.latent_dim);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let x = hflu.encode(&bind, &c, 0);
        assert_eq!(tape.shape(x), (1, hflu.out_dim()));
        // Explicit half is the stored feature verbatim.
        let v = tape.value(x);
        let expected = c.explicit.feature(NodeType::Article, 0);
        for i in 0..40 {
            assert_eq!(v[(0, i)], expected[(0, i)]);
        }
    }

    #[test]
    fn explicit_only_ablation_has_no_params() {
        let f = fixture();
        let c = ctx(&f);
        let config = FakeDetectorConfig { use_latent: false, ..FakeDetectorConfig::default() };
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(2);
        let hflu = Hflu::new(
            &mut params,
            "h",
            NodeType::Creator,
            c.tokenized.vocab.id_space(),
            40,
            &config,
            &mut rng,
        );
        assert!(hflu.param_ids().is_empty());
        assert_eq!(params.len(), 0);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let x = hflu.encode(&bind, &c, 0);
        assert_eq!(tape.shape(x), (1, 40));
    }

    #[test]
    fn latent_only_ablation_matches_encoder_width() {
        let f = fixture();
        let c = ctx(&f);
        let config = FakeDetectorConfig { use_explicit: false, ..FakeDetectorConfig::default() };
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(2);
        let hflu = Hflu::new(
            &mut params,
            "h",
            NodeType::Subject,
            c.tokenized.vocab.id_space(),
            40,
            &config,
            &mut rng,
        );
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let x = hflu.encode(&bind, &c, 0);
        assert_eq!(tape.shape(x), (1, config.latent_dim));
        // Latent half is a sigmoid output: strictly in (0, 1).
        assert!(tape.value(x).as_slice().iter().all(|&v| v > 0.0 && v < 1.0));
    }
}

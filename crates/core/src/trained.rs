//! A trained FakeDetector: transductive prediction, probability scores,
//! inductive scoring of *unseen* articles, and weight (de)serialisation.
//!
//! Inductive scoring addresses the paper's motivating goal of detecting
//! fake news *timely*: a statement that has just appeared can be scored
//! against the already-trained network without retraining, using its
//! author's and subjects' diffused states.

use crate::model::{Network, NetworkDims};
use crate::{FakeDetectorConfig, TrainReport};
use fd_autograd::{Tape, Var};
use fd_data::{ExperimentContext, Predictions};
use fd_graph::NodeType;
use fd_nn::{Binding, Params};
use fd_tensor::softmax_in_place;
use fd_text::{encode_sequence, Tokenizer};
use serde::{Deserialize, Serialize};

/// Total entities a transductive pass scores (all three node types).
fn batch_size(ctx: &ExperimentContext<'_>) -> usize {
    ctx.corpus.articles.len() + ctx.corpus.creators.len() + ctx.corpus.subjects.len()
}

/// The weights and metadata of a fitted model.
pub struct TrainedFakeDetector {
    config: FakeDetectorConfig,
    dims: NetworkDims,
    seed: u64,
    network: Network,
    report: TrainReport,
}

/// Serialised form (weights as a name→matrix map via `Params`).
#[derive(Serialize, Deserialize)]
struct SavedModel {
    config: FakeDetectorConfig,
    dims: NetworkDims,
    seed: u64,
    params_json: String,
    report: TrainReport,
}

impl TrainedFakeDetector {
    pub(crate) fn from_parts(
        config: FakeDetectorConfig,
        dims: NetworkDims,
        seed: u64,
        network: Network,
        report: TrainReport,
    ) -> Self {
        Self { config, dims, seed, network, report }
    }

    /// The training diagnostics recorded during `fit`.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The model's configuration.
    pub fn config(&self) -> &FakeDetectorConfig {
        &self.config
    }

    /// Checks that a context matches the dimensions this model was
    /// trained for; all prediction entry points call this.
    fn check_ctx(&self, ctx: &ExperimentContext<'_>) {
        assert_eq!(
            ctx.tokenized.vocab.id_space(),
            self.dims.vocab,
            "TrainedFakeDetector: vocabulary size changed since training"
        );
        assert_eq!(
            ctx.explicit.dim, self.dims.explicit_dim,
            "TrainedFakeDetector: explicit feature width changed since training"
        );
        assert_eq!(
            ctx.n_classes(),
            self.dims.n_classes,
            "TrainedFakeDetector: label mode changed since training"
        );
    }

    /// Arg-max predictions for every entity in the context's corpus.
    ///
    /// Runs the tape-free batched forward pass: all nodes of a type go
    /// through one blocked matmul per layer instead of one tape replay
    /// per node, and independent node types fan out across `FD_THREADS`.
    /// Bit-identical to [`TrainedFakeDetector::predict_per_node`].
    pub fn predict(&self, ctx: &ExperimentContext<'_>) -> Predictions {
        self.check_ctx(ctx);
        let latency =
            fd_obs::histogram("infer.predict_us", &fd_obs::exponential_buckets(100.0, 4.0, 10));
        let _span = fd_obs::span_timed("predict", latency);
        let batch = batch_size(ctx);
        fd_obs::histogram("infer.batch_size", &fd_obs::exponential_buckets(16.0, 4.0, 8))
            .record(batch as f64);
        fd_obs::counter("infer.predictions").add(batch as u64);
        fd_obs::event(fd_obs::Level::Debug, "infer.predict", &[("batch", batch.into())]);
        let states = self.network.forward_states_matrix(&self.config, ctx);
        let mut predictions = Predictions::zeroed(ctx);
        for (slot, ty) in NodeType::ALL.iter().enumerate() {
            let logits =
                self.network.heads[slot].forward_matrix(&self.network.params, &states[slot]);
            let out = predictions.for_type_mut(*ty);
            for (idx, slot_out) in out.iter_mut().enumerate() {
                *slot_out = logits.row_argmax(idx).index;
            }
        }
        predictions
    }

    /// The original per-node prediction path: replays the autograd tape
    /// for every entity, exactly as training does. Kept as the reference
    /// implementation the batched [`TrainedFakeDetector::predict`] is
    /// regression-tested against, and as the serial baseline the bench
    /// harness compares the batched path to.
    pub fn predict_per_node(&self, ctx: &ExperimentContext<'_>) -> Predictions {
        self.check_ctx(ctx);
        let tape = Tape::with_capacity(1 << 16);
        let binding = Binding::new(&tape, &self.network.params);
        let states = self.network.forward_states(&self.config, &binding, ctx);
        let mut predictions = Predictions::zeroed(ctx);
        for (slot, ty) in NodeType::ALL.iter().enumerate() {
            let out = predictions.for_type_mut(*ty);
            for (idx, slot_out) in out.iter_mut().enumerate() {
                let logits = self.network.heads[slot].forward(&binding, states[slot][idx]);
                *slot_out = tape.with_value(logits, |m| m.row_argmax(0).index);
            }
        }
        predictions
    }

    /// Per-class probabilities for every entity, type-slot indexed
    /// (articles, creators, subjects). Uses the batched forward pass;
    /// probabilities are bit-identical to the per-node tape path.
    pub fn predict_proba(&self, ctx: &ExperimentContext<'_>) -> [Vec<Vec<f32>>; 3] {
        self.check_ctx(ctx);
        let latency =
            fd_obs::histogram("infer.proba_us", &fd_obs::exponential_buckets(100.0, 4.0, 10));
        let _span = fd_obs::span_timed("predict_proba", latency);
        let batch = batch_size(ctx);
        fd_obs::histogram("infer.batch_size", &fd_obs::exponential_buckets(16.0, 4.0, 8))
            .record(batch as f64);
        fd_obs::counter("infer.proba").add(batch as u64);
        fd_obs::event(fd_obs::Level::Debug, "infer.predict_proba", &[("batch", batch.into())]);
        let states = self.network.forward_states_matrix(&self.config, ctx);
        let mut out: [Vec<Vec<f32>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (slot, states_of_type) in states.iter().enumerate() {
            let logits =
                self.network.heads[slot].forward_matrix(&self.network.params, states_of_type);
            out[slot] = (0..logits.rows())
                .map(|idx| {
                    let mut probs = logits.row(idx).to_vec();
                    softmax_in_place(&mut probs);
                    probs
                })
                .collect();
        }
        out
    }

    /// **Inductive** scoring of an article that is *not* in the corpus:
    /// its text is featurised with the trained word sets and vocabulary,
    /// and one article-GDU step is run against the diffused states of
    /// its (existing) creator and subjects. Returns per-class
    /// probabilities under the training label mode.
    ///
    /// # Panics
    /// Panics when `creator`/`subjects` indices are out of range.
    pub fn score_new_article(
        &self,
        ctx: &ExperimentContext<'_>,
        text: &str,
        creator: Option<usize>,
        subjects: &[usize],
    ) -> Vec<f32> {
        self.check_ctx(ctx);
        fd_obs::counter("infer.new_article_scores").inc();
        if let Some(u) = creator {
            assert!(u < ctx.corpus.creators.len(), "score_new_article: creator {u} out of range");
        }
        assert!(
            subjects.iter().all(|&s| s < ctx.corpus.subjects.len()),
            "score_new_article: subject out of range"
        );

        let tokens = Tokenizer::default().tokenize(text);
        let explicit = ctx.explicit.featurise_tokens(NodeType::Article, &tokens);
        let sequence = encode_sequence(&tokens, &ctx.tokenized.vocab, ctx.tokenized.seq_len);

        let tape = Tape::with_capacity(1 << 16);
        let binding = Binding::new(&tape, &self.network.params);
        let states = self.network.forward_states(&self.config, &binding, ctx);

        let x = self.network.hflu[0].encode_raw(&binding, explicit, &sequence);
        let zero = tape.leaf(fd_tensor::Matrix::zeros(1, self.config.gdu_hidden));
        let z = if subjects.is_empty() || !self.config.use_diffusion {
            zero
        } else {
            let vars: Vec<Var> = subjects.iter().map(|&s| states[2][s]).collect();
            tape.mean_n(&vars)
        };
        let t_in = match creator {
            Some(u) if self.config.use_diffusion => states[1][u],
            _ => zero,
        };
        let h = self.network.gdu[0].forward(&binding, x, z, t_in, self.config.use_gates);
        let logits = self.network.heads[0].forward(&binding, h);
        let mut probs = tape.value(logits).into_vec();
        softmax_in_place(&mut probs);
        probs
    }

    /// Serialises config + dimensions + weights + diagnostics to JSON.
    pub fn to_json(&self) -> String {
        let saved = SavedModel {
            config: self.config.clone(),
            dims: self.dims,
            seed: self.seed,
            params_json: self.network.params.to_json(),
            report: self.report.clone(),
        };
        serde_json::to_string(&saved).expect("TrainedFakeDetector serialisation cannot fail")
    }

    /// Restores a model saved with [`TrainedFakeDetector::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        let saved: SavedModel = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let params = Params::from_json(&saved.params_json).map_err(|e| e.to_string())?;
        let expected = params.len();
        // Rebuild re-attaches by name; the RNG is only consulted for
        // parameters missing from the store, of which there must be none.
        let network = Network::build(&saved.config, saved.dims, params, saved.seed);
        if network.params.len() != expected {
            return Err(format!(
                "saved weights incomplete: rebuild added {} parameters",
                network.params.len() - expected
            ));
        }
        Ok(Self {
            config: saved.config,
            dims: saved.dims,
            seed: saved.seed,
            network,
            report: saved.report,
        })
    }
}

//! A trained FakeDetector: transductive prediction, probability scores,
//! inductive scoring of *unseen* articles, and weight (de)serialisation.
//!
//! Inductive scoring addresses the paper's motivating goal of detecting
//! fake news *timely*: a statement that has just appeared can be scored
//! against the already-trained network without retraining, using its
//! author's and subjects' diffused states.

use crate::gdu::QuantGdu;
use crate::incremental::StateView;
use crate::model::{Network, NetworkDims};
use crate::{FakeDetectorConfig, TrainReport};
use fd_autograd::{Tape, Var};
use fd_data::{ExperimentContext, Predictions};
use fd_graph::NodeType;
use fd_nn::{Binding, Params, QuantLinear};
use fd_tensor::softmax_in_place;
use fd_text::{encode_sequence, Tokenizer};
use serde::{Deserialize, Serialize};

/// Reduced-precision serving twin of a [`TrainedFakeDetector`]: int8
/// copies of the three GDU cells and classification heads, built once
/// by [`TrainedFakeDetector::quantize`] and used by
/// [`TrainedFakeDetector::score_batch_quant`]. The original model stays
/// authoritative — this is a derived, inference-only artifact.
#[derive(Debug, Clone)]
pub struct QuantModel {
    gdu: [QuantGdu; 3],
    heads: [QuantLinear; 3],
}

/// Total entities a transductive pass scores (all three node types).
fn batch_size(ctx: &ExperimentContext<'_>) -> usize {
    ctx.corpus.articles.len() + ctx.corpus.creators.len() + ctx.corpus.subjects.len()
}

fn type_slot(ty: NodeType) -> usize {
    match ty {
        NodeType::Article => 0,
        NodeType::Creator => 1,
        NodeType::Subject => 2,
    }
}

/// One inductive scoring request: the text of an entity that is *not*
/// in the corpus, plus the corpus indices of its neighbours in the
/// News-HSN. This is the unit of work the serving layer micro-batches.
///
/// Which neighbour fields apply depends on `node_type`:
///
/// * [`NodeType::Article`] — `creator` (its author) and `subjects`
///   (topics it indicates); `articles` must be empty.
/// * [`NodeType::Creator`] / [`NodeType::Subject`] — `articles` (the
///   articles it wrote / that indicate it); `creator` and `subjects`
///   must be unset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreRequest {
    /// Which entity type the new node is.
    pub node_type: NodeType,
    /// Raw text (statement, profile or topic description).
    pub text: String,
    /// Authoring creator index (articles only).
    pub creator: Option<usize>,
    /// Indicated subject indices (articles only).
    pub subjects: Vec<usize>,
    /// Neighbouring article indices (creators and subjects only).
    pub articles: Vec<usize>,
}

impl ScoreRequest {
    /// A request for a new article with the given neighbours.
    pub fn article(text: impl Into<String>, creator: Option<usize>, subjects: Vec<usize>) -> Self {
        Self { node_type: NodeType::Article, text: text.into(), creator, subjects, articles: Vec::new() }
    }

    /// A request for a new creator with the given authored articles.
    pub fn creator(text: impl Into<String>, articles: Vec<usize>) -> Self {
        Self { node_type: NodeType::Creator, text: text.into(), creator: None, subjects: Vec::new(), articles }
    }

    /// A request for a new subject with the given indicating articles.
    pub fn subject(text: impl Into<String>, articles: Vec<usize>) -> Self {
        Self { node_type: NodeType::Subject, text: text.into(), creator: None, subjects: Vec::new(), articles }
    }
}

/// The weights and metadata of a fitted model.
pub struct TrainedFakeDetector {
    pub(crate) config: FakeDetectorConfig,
    dims: NetworkDims,
    seed: u64,
    pub(crate) network: Network,
    report: TrainReport,
}

/// Serialised form (weights as a name→matrix map via `Params`).
#[derive(Serialize, Deserialize)]
struct SavedModel {
    config: FakeDetectorConfig,
    dims: NetworkDims,
    seed: u64,
    params_json: String,
    report: TrainReport,
}

impl TrainedFakeDetector {
    pub(crate) fn from_parts(
        config: FakeDetectorConfig,
        dims: NetworkDims,
        seed: u64,
        network: Network,
        report: TrainReport,
    ) -> Self {
        Self { config, dims, seed, network, report }
    }

    /// The training diagnostics recorded during `fit`.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The model's configuration.
    pub fn config(&self) -> &FakeDetectorConfig {
        &self.config
    }

    /// JSON rendering of the raw weights alone (no config/report
    /// envelope). Two models trained along bit-identical trajectories —
    /// e.g. an uninterrupted run vs. a crash-and-resume of the same run
    /// — produce equal strings; the recovery tests assert exactly that.
    pub fn params_json(&self) -> String {
        self.network.params.to_json()
    }

    /// Checks that a context matches the dimensions this model was
    /// trained for; all prediction entry points call this.
    pub(crate) fn check_ctx(&self, ctx: &ExperimentContext<'_>) {
        assert_eq!(
            ctx.tokenized.vocab.id_space(),
            self.dims.vocab,
            "TrainedFakeDetector: vocabulary size changed since training"
        );
        assert_eq!(
            ctx.explicit.dim, self.dims.explicit_dim,
            "TrainedFakeDetector: explicit feature width changed since training"
        );
        assert_eq!(
            ctx.n_classes(),
            self.dims.n_classes,
            "TrainedFakeDetector: label mode changed since training"
        );
    }

    /// Arg-max predictions for every entity in the context's corpus.
    ///
    /// Runs the tape-free batched forward pass: all nodes of a type go
    /// through one blocked matmul per layer instead of one tape replay
    /// per node, and independent node types fan out across `FD_THREADS`.
    /// Bit-identical to [`TrainedFakeDetector::predict_per_node`].
    pub fn predict(&self, ctx: &ExperimentContext<'_>) -> Predictions {
        self.check_ctx(ctx);
        let latency =
            fd_obs::histogram("infer.predict_us", &fd_obs::exponential_buckets(100.0, 4.0, 10));
        let _span = fd_obs::span_timed("predict", latency);
        let batch = batch_size(ctx);
        fd_obs::histogram("infer.batch_size", &fd_obs::exponential_buckets(16.0, 4.0, 8))
            .record(batch as f64);
        fd_obs::counter("infer.predictions").add(batch as u64);
        fd_obs::event(fd_obs::Level::Debug, "infer.predict", &[("batch", batch.into())]);
        let states = self.network.forward_states_matrix(&self.config, ctx);
        let mut predictions = Predictions::zeroed(ctx);
        for (slot, ty) in NodeType::ALL.iter().enumerate() {
            let logits =
                self.network.heads[slot].forward_matrix(&self.network.params, &states[slot]);
            let out = predictions.for_type_mut(*ty);
            for (idx, slot_out) in out.iter_mut().enumerate() {
                *slot_out = logits.row_argmax(idx).index;
            }
        }
        predictions
    }

    /// The original per-node prediction path: replays the autograd tape
    /// for every entity, exactly as training does. Kept as the reference
    /// implementation the batched [`TrainedFakeDetector::predict`] is
    /// regression-tested against, and as the serial baseline the bench
    /// harness compares the batched path to.
    pub fn predict_per_node(&self, ctx: &ExperimentContext<'_>) -> Predictions {
        self.check_ctx(ctx);
        let tape = Tape::with_capacity(1 << 16);
        let binding = Binding::new(&tape, &self.network.params);
        let states = self.network.forward_states(&self.config, &binding, ctx);
        let mut predictions = Predictions::zeroed(ctx);
        for (slot, ty) in NodeType::ALL.iter().enumerate() {
            let out = predictions.for_type_mut(*ty);
            for (idx, slot_out) in out.iter_mut().enumerate() {
                let logits = self.network.heads[slot].forward(&binding, states[slot][idx]);
                *slot_out = tape.with_value(logits, |m| m.row_argmax(0).index);
            }
        }
        predictions
    }

    /// Per-class probabilities for every entity, type-slot indexed
    /// (articles, creators, subjects). Uses the batched forward pass;
    /// probabilities are bit-identical to the per-node tape path.
    ///
    /// ```
    /// # use fd_core::{FakeDetector, FakeDetectorConfig};
    /// # use fd_data::{generate, CvSplits, ExplicitFeatures, GeneratorConfig,
    /// #               ExperimentContext, LabelMode, TokenizedCorpus, TrainSets};
    /// # use rand::{rngs::StdRng, SeedableRng};
    /// # let corpus = generate(&GeneratorConfig::politifact().scaled(0.008), 7);
    /// # let tokenized = TokenizedCorpus::build(&corpus, 8, 1500);
    /// # let mut rng = StdRng::seed_from_u64(1);
    /// # let train = TrainSets {
    /// #     articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
    /// #     creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
    /// #     subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
    /// # };
    /// # let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 20);
    /// # let ctx = ExperimentContext {
    /// #     corpus: &corpus, tokenized: &tokenized, explicit: &explicit,
    /// #     train: &train, mode: LabelMode::Binary, seed: 1,
    /// # };
    /// # let config = FakeDetectorConfig { epochs: 1, ..FakeDetectorConfig::default() };
    /// let trained = FakeDetector::new(config).fit(&ctx);
    /// let [articles, _creators, _subjects] = trained.predict_proba(&ctx);
    /// // Each row is a probability distribution over the classes.
    /// for row in &articles {
    ///     assert_eq!(row.len(), LabelMode::Binary.n_classes());
    ///     assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    /// }
    /// ```
    pub fn predict_proba(&self, ctx: &ExperimentContext<'_>) -> [Vec<Vec<f32>>; 3] {
        self.check_ctx(ctx);
        let latency =
            fd_obs::histogram("infer.proba_us", &fd_obs::exponential_buckets(100.0, 4.0, 10));
        let _span = fd_obs::span_timed("predict_proba", latency);
        let batch = batch_size(ctx);
        fd_obs::histogram("infer.batch_size", &fd_obs::exponential_buckets(16.0, 4.0, 8))
            .record(batch as f64);
        fd_obs::counter("infer.proba").add(batch as u64);
        fd_obs::event(fd_obs::Level::Debug, "infer.predict_proba", &[("batch", batch.into())]);
        let states = self.network.forward_states_matrix(&self.config, ctx);
        let mut out: [Vec<Vec<f32>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (slot, states_of_type) in states.iter().enumerate() {
            let logits =
                self.network.heads[slot].forward_matrix(&self.network.params, states_of_type);
            out[slot] = (0..logits.rows())
                .map(|idx| {
                    let mut probs = logits.row(idx).to_vec();
                    softmax_in_place(&mut probs);
                    probs
                })
                .collect();
        }
        out
    }

    /// The corpus's diffused GDU states, one `count x hidden` matrix per
    /// node type (articles, creators, subjects). These depend only on
    /// the trained weights and the corpus, so a serving process computes
    /// them once at startup and reuses them for every inductive request;
    /// they are the neighbour-state inputs [`TrainedFakeDetector::score_batch`]
    /// reads. Bit-identical to the per-node tape states.
    pub fn diffused_states(&self, ctx: &ExperimentContext<'_>) -> [fd_tensor::Matrix; 3] {
        self.check_ctx(ctx);
        self.network.forward_states_matrix(&self.config, ctx)
    }

    /// [`TrainedFakeDetector::diffused_states`] keeping every round's
    /// state matrices (final element bit-identical to
    /// `diffused_states`). The per-round history is the baseline that
    /// incremental ingestion ([`TrainedFakeDetector::delta_states`])
    /// diffs against.
    pub fn diffused_states_rounds(&self, ctx: &ExperimentContext<'_>) -> Vec<[fd_tensor::Matrix; 3]> {
        self.check_ctx(ctx);
        self.network.forward_states_rounds(&self.config, ctx)
    }

    /// Checks a [`ScoreRequest`]'s neighbour indices against the corpus
    /// without running the model — the serving layer rejects bad
    /// requests with a 4xx *before* they reach the shared batch queue.
    pub fn validate_request(
        &self,
        ctx: &ExperimentContext<'_>,
        req: &ScoreRequest,
    ) -> Result<(), String> {
        self.validate_request_extended(
            [ctx.corpus.articles.len(), ctx.corpus.creators.len(), ctx.corpus.subjects.len()],
            req,
        )
    }

    /// [`TrainedFakeDetector::validate_request`] against explicit node
    /// counts `[articles, creators, subjects]` — the serving layer
    /// passes its live combined counts (base corpus + ingested nodes)
    /// so requests may reference ingested neighbours too.
    pub fn validate_request_extended(
        &self,
        counts: [usize; 3],
        req: &ScoreRequest,
    ) -> Result<(), String> {
        let [n_articles, n_creators, n_subjects] = counts;
        match req.node_type {
            NodeType::Article => {
                if !req.articles.is_empty() {
                    return Err("article requests take creator/subjects, not articles".into());
                }
                if let Some(u) = req.creator {
                    if u >= n_creators {
                        return Err(format!("creator {u} out of range (corpus has {n_creators})"));
                    }
                }
                if let Some(&s) = req.subjects.iter().find(|&&s| s >= n_subjects) {
                    return Err(format!("subject {s} out of range (corpus has {n_subjects})"));
                }
            }
            NodeType::Creator | NodeType::Subject => {
                if req.creator.is_some() || !req.subjects.is_empty() {
                    return Err(format!(
                        "{:?} requests take articles, not creator/subjects",
                        req.node_type
                    ));
                }
                if let Some(&a) = req.articles.iter().find(|&&a| a >= n_articles) {
                    return Err(format!("article {a} out of range (corpus has {n_articles})"));
                }
            }
        }
        Ok(())
    }

    /// **Micro-batched** inductive scoring: featurises every request's
    /// text, groups requests by node type, and runs one matrix-level
    /// forward per type — HFLU batch encode, one GDU step against the
    /// precomputed corpus `states` (see
    /// [`TrainedFakeDetector::diffused_states`]), one head matmul —
    /// instead of one full pass per request. Returns per-class
    /// probabilities in request order.
    ///
    /// **Batching never changes an answer**: row `i` of every op here is
    /// independent of the other rows, so the probabilities for a request
    /// are bit-identical whether it is scored alone, with any companions,
    /// or through [`TrainedFakeDetector::score_new_article`]. That
    /// invariant is what lets the serving layer batch opportunistically
    /// under load without becoming nondeterministic.
    ///
    /// Returns `Err` (never panics) when a request fails
    /// [`TrainedFakeDetector::validate_request`].
    pub fn score_batch(
        &self,
        ctx: &ExperimentContext<'_>,
        states: &[fd_tensor::Matrix; 3],
        requests: &[ScoreRequest],
    ) -> Result<Vec<Vec<f32>>, String> {
        self.score_batch_view(ctx, &StateView::from_base(states), requests)
    }

    /// [`TrainedFakeDetector::score_batch`] reading neighbour states
    /// through a [`StateView`] instead of plain matrices, so requests
    /// can reference ingested nodes (appended rows) and base nodes
    /// whose states an ingest delta patched. With an overlay-free view
    /// the result is bit-identical to `score_batch` — the mean/gather
    /// arithmetic replays `fd_tensor::mean_rows`/`gather_rows` exactly.
    pub fn score_batch_view(
        &self,
        ctx: &ExperimentContext<'_>,
        view: &StateView<'_>,
        requests: &[ScoreRequest],
    ) -> Result<Vec<Vec<f32>>, String> {
        self.score_batch_with(ctx, view, requests, |slot, x, z, t_in| {
            let h = self.network.gdu[slot].forward_matrix(
                &self.network.params,
                x,
                z,
                t_in,
                self.config.use_gates,
            );
            self.network.heads[slot].forward_matrix(&self.network.params, &h)
        })
    }

    /// Builds the reduced-precision serving twin of this model: the
    /// three GDU cells and classification heads with int8 weights (per
    /// output column scales). Text encoding, the precomputed diffused
    /// `states`, and training itself stay exact f32 — only the one GDU
    /// step and head matmul per request are quantized, which is where
    /// nearly all the per-request multiply work lives.
    pub fn quantize(&self) -> QuantModel {
        QuantModel {
            gdu: std::array::from_fn(|s| self.network.gdu[s].quantize(&self.network.params)),
            heads: std::array::from_fn(|s| self.network.heads[s].quantize(&self.network.params)),
        }
    }

    /// [`TrainedFakeDetector::score_batch`] through a prebuilt
    /// [`QuantModel`]: identical featurisation, neighbour aggregation,
    /// and softmax, with the GDU step and head running on int8 weights.
    /// The parity tests gate this path at max |Δscore| ≤ 4e-3
    /// (measured ~2e-3 on the seeded parity corpus) and *identical*
    /// arg-max labels vs [`TrainedFakeDetector::score_batch`]; the
    /// exact-parity ≤ 1e-3 guarantee belongs to `--precision f32`,
    /// which runs [`TrainedFakeDetector::score_batch`] unchanged.
    pub fn score_batch_quant(
        &self,
        ctx: &ExperimentContext<'_>,
        states: &[fd_tensor::Matrix; 3],
        requests: &[ScoreRequest],
        quant: &QuantModel,
    ) -> Result<Vec<Vec<f32>>, String> {
        self.score_batch_view_quant(ctx, &StateView::from_base(states), requests, quant)
    }

    /// [`TrainedFakeDetector::score_batch_view`] through a prebuilt
    /// [`QuantModel`] — the int8 twin of the view-based scorer, same
    /// parity gates as [`TrainedFakeDetector::score_batch_quant`].
    pub fn score_batch_view_quant(
        &self,
        ctx: &ExperimentContext<'_>,
        view: &StateView<'_>,
        requests: &[ScoreRequest],
        quant: &QuantModel,
    ) -> Result<Vec<Vec<f32>>, String> {
        self.score_batch_with(ctx, view, requests, |slot, x, z, t_in| {
            let h = quant.gdu[slot].forward_matrix(x, z, t_in, self.config.use_gates);
            quant.heads[slot].forward_matrix(&h)
        })
    }

    /// Per-class probabilities of a node already in the (live) graph,
    /// from its final-round diffused state row: one head matmul plus
    /// softmax, bit-identical to the corresponding row of
    /// [`TrainedFakeDetector::predict_proba`]. The serving layer's
    /// by-id lookups and ingest responses read state rows out of a
    /// [`StateView`] and score them here.
    pub fn node_probabilities(&self, ty: NodeType, state_row: &[f32]) -> Vec<f32> {
        let slot = type_slot(ty);
        let h = fd_tensor::Matrix::row_vector(state_row);
        let logits = self.network.heads[slot].forward_matrix(&self.network.params, &h);
        let mut probs = logits.row(0).to_vec();
        softmax_in_place(&mut probs);
        probs
    }

    /// [`TrainedFakeDetector::node_probabilities`] through the int8
    /// head of a prebuilt [`QuantModel`] (diffused states stay f32).
    pub fn node_probabilities_quant(
        &self,
        quant: &QuantModel,
        ty: NodeType,
        state_row: &[f32],
    ) -> Vec<f32> {
        let slot = type_slot(ty);
        let h = fd_tensor::Matrix::row_vector(state_row);
        let logits = quant.heads[slot].forward_matrix(&h);
        let mut probs = logits.row(0).to_vec();
        softmax_in_place(&mut probs);
        probs
    }

    /// Shared implementation behind the exact and quantized batch
    /// scorers: everything up to the GDU input (featurisation, HFLU
    /// encode, neighbour mean, creator gather) and the final softmax is
    /// common; `head_logits(slot, x, z, t_in)` supplies the
    /// precision-specific GDU + head evaluation.
    fn score_batch_with(
        &self,
        ctx: &ExperimentContext<'_>,
        view: &StateView<'_>,
        requests: &[ScoreRequest],
        head_logits: impl Fn(usize, &fd_tensor::Matrix, &fd_tensor::Matrix, &fd_tensor::Matrix) -> fd_tensor::Matrix,
    ) -> Result<Vec<Vec<f32>>, String> {
        self.check_ctx(ctx);
        let counts = view.counts();
        for (i, req) in requests.iter().enumerate() {
            self.validate_request_extended(counts, req).map_err(|e| format!("request {i}: {e}"))?;
        }
        fd_obs::counter("infer.score_batch_calls").inc();
        fd_obs::counter("infer.score_batch_items").add(requests.len() as u64);

        let hidden = self.config.gdu_hidden;
        let tokenizer = Tokenizer::default();
        let mut by_slot: [Vec<usize>; 3] = Default::default();
        for (i, req) in requests.iter().enumerate() {
            by_slot[type_slot(req.node_type)].push(i);
        }

        let mut out: Vec<Vec<f32>> = vec![Vec::new(); requests.len()];
        for (slot, members) in by_slot.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let n = members.len();
            let ty = NodeType::ALL[slot];
            let mut explicit_rows = fd_tensor::Matrix::zeros(n, ctx.explicit.dim);
            let mut sequences: Vec<Vec<usize>> = Vec::with_capacity(n);
            // Neighbour lists for the mean port (z) and the gathered
            // creator row for the direct port (t, articles only).
            let mut z_lists: Vec<&[usize]> = Vec::with_capacity(n);
            let mut t_rows: Vec<Option<usize>> = Vec::with_capacity(n);
            for (k, &ri) in members.iter().enumerate() {
                let req = &requests[ri];
                let tokens = tokenizer.tokenize(&req.text);
                explicit_rows
                    .row_mut(k)
                    .copy_from_slice(ctx.explicit.featurise_tokens(ty, &tokens).row(0));
                sequences.push(encode_sequence(&tokens, &ctx.tokenized.vocab, ctx.tokenized.seq_len));
                if self.config.use_diffusion {
                    z_lists.push(if slot == 0 { &req.subjects } else { &req.articles });
                    t_rows.push(if slot == 0 { req.creator } else { None });
                } else {
                    z_lists.push(&[]);
                    t_rows.push(None);
                }
            }
            let seq_refs: Vec<&[usize]> = sequences.iter().map(Vec::as_slice).collect();
            let x = self.network.hflu[slot].encode_raw_batch(
                &self.network.params,
                explicit_rows,
                &seq_refs,
            );
            // Articles aggregate subject states and read their creator's
            // state; creators/subjects aggregate article states — the
            // same wiring as one diffusion round of the full graph. The
            // rows come out of the view (base matrix, ingest patch, or
            // appended rows) with the exact `mean_rows`/`gather_rows`
            // reduction order, so batching and overlays never change an
            // answer.
            let z_slot = if slot == 0 { 2 } else { 0 };
            let mut z = fd_tensor::Matrix::zeros(n, hidden);
            for (k, list) in z_lists.iter().enumerate() {
                if let Some((&first, rest)) = list.split_first() {
                    let row = z.row_mut(k);
                    row.copy_from_slice(view.row(z_slot, first));
                    for &j in rest {
                        for (acc, &v) in row.iter_mut().zip(view.row(z_slot, j)) {
                            *acc += v;
                        }
                    }
                    let inv = 1.0 / list.len() as f32;
                    for acc in row.iter_mut() {
                        *acc *= inv;
                    }
                }
            }
            let mut t_in = fd_tensor::Matrix::zeros(n, hidden);
            if slot == 0 {
                for (k, r) in t_rows.iter().enumerate() {
                    if let Some(u) = r {
                        t_in.row_mut(k).copy_from_slice(view.row(1, *u));
                    }
                }
            }
            let logits = head_logits(slot, &x, &z, &t_in);
            for (k, &ri) in members.iter().enumerate() {
                let mut probs = logits.row(k).to_vec();
                softmax_in_place(&mut probs);
                out[ri] = probs;
            }
        }
        Ok(out)
    }

    /// **Inductive** scoring of an article that is *not* in the corpus:
    /// its text is featurised with the trained word sets and vocabulary,
    /// and one article-GDU step is run against the diffused states of
    /// its (existing) creator and subjects. Returns per-class
    /// probabilities under the training label mode.
    ///
    /// # Panics
    /// Panics when `creator`/`subjects` indices are out of range.
    pub fn score_new_article(
        &self,
        ctx: &ExperimentContext<'_>,
        text: &str,
        creator: Option<usize>,
        subjects: &[usize],
    ) -> Vec<f32> {
        self.check_ctx(ctx);
        fd_obs::counter("infer.new_article_scores").inc();
        if let Some(u) = creator {
            assert!(u < ctx.corpus.creators.len(), "score_new_article: creator {u} out of range");
        }
        assert!(
            subjects.iter().all(|&s| s < ctx.corpus.subjects.len()),
            "score_new_article: subject out of range"
        );

        let tokens = Tokenizer::default().tokenize(text);
        let explicit = ctx.explicit.featurise_tokens(NodeType::Article, &tokens);
        let sequence = encode_sequence(&tokens, &ctx.tokenized.vocab, ctx.tokenized.seq_len);

        let tape = Tape::with_capacity(1 << 16);
        let binding = Binding::new(&tape, &self.network.params);
        let states = self.network.forward_states(&self.config, &binding, ctx);

        let x = self.network.hflu[0].encode_raw(&binding, explicit, &sequence);
        let zero = tape.leaf(fd_tensor::Matrix::zeros(1, self.config.gdu_hidden));
        let z = if subjects.is_empty() || !self.config.use_diffusion {
            zero
        } else {
            let vars: Vec<Var> = subjects.iter().map(|&s| states[2][s]).collect();
            tape.mean_n(&vars)
        };
        let t_in = match creator {
            Some(u) if self.config.use_diffusion => states[1][u],
            _ => zero,
        };
        let h = self.network.gdu[0].forward(&binding, x, z, t_in, self.config.use_gates);
        let logits = self.network.heads[0].forward(&binding, h);
        let mut probs = tape.value(logits).into_vec();
        softmax_in_place(&mut probs);
        probs
    }

    /// Serialises config + dimensions + weights + diagnostics to JSON.
    pub fn to_json(&self) -> String {
        let saved = SavedModel {
            config: self.config.clone(),
            dims: self.dims,
            seed: self.seed,
            params_json: self.network.params.to_json(),
            report: self.report.clone(),
        };
        serde_json::to_string(&saved).expect("TrainedFakeDetector serialisation cannot fail")
    }

    /// Restores a model saved with [`TrainedFakeDetector::to_json`].
    ///
    /// ```
    /// use fd_core::{FakeDetector, FakeDetectorConfig, TrainedFakeDetector};
    /// # use fd_data::{generate, CvSplits, ExplicitFeatures, GeneratorConfig,
    /// #               ExperimentContext, LabelMode, TokenizedCorpus, TrainSets};
    /// # use rand::{rngs::StdRng, SeedableRng};
    /// # let corpus = generate(&GeneratorConfig::politifact().scaled(0.008), 7);
    /// # let tokenized = TokenizedCorpus::build(&corpus, 8, 1500);
    /// # let mut rng = StdRng::seed_from_u64(1);
    /// # let train = TrainSets {
    /// #     articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
    /// #     creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
    /// #     subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
    /// # };
    /// # let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 20);
    /// # let ctx = ExperimentContext {
    /// #     corpus: &corpus, tokenized: &tokenized, explicit: &explicit,
    /// #     train: &train, mode: LabelMode::Binary, seed: 1,
    /// # };
    /// let config = FakeDetectorConfig { epochs: 1, ..FakeDetectorConfig::default() };
    /// let trained = FakeDetector::new(config).fit(&ctx);
    /// let restored = TrainedFakeDetector::from_json(&trained.to_json()).unwrap();
    /// assert_eq!(restored.predict(&ctx), trained.predict(&ctx));
    /// ```
    pub fn from_json(json: &str) -> Result<Self, String> {
        let saved: SavedModel = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let params = Params::from_json(&saved.params_json).map_err(|e| e.to_string())?;
        let expected = params.len();
        // Rebuild re-attaches by name; the RNG is only consulted for
        // parameters missing from the store, of which there must be none.
        let network = Network::build(&saved.config, saved.dims, params, saved.seed);
        if network.params.len() != expected {
            return Err(format!(
                "saved weights incomplete: rebuild added {} parameters",
                network.params.len() - expected
            ));
        }
        Ok(Self {
            config: saved.config,
            dims: saved.dims,
            seed: saved.seed,
            network,
            report: saved.report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FakeDetector;
    use fd_data::{
        generate, CvSplits, ExplicitFeatures, GeneratorConfig, LabelMode, TokenizedCorpus,
        TrainSets,
    };
    use rand::{rngs::StdRng, SeedableRng};

    struct Fixture {
        corpus: fd_data::Corpus,
        tokenized: TokenizedCorpus,
        explicit: ExplicitFeatures,
        train: TrainSets,
    }

    fn fixture() -> Fixture {
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), 11);
        let tokenized = TokenizedCorpus::build(&corpus, 12, 3000);
        let mut rng = StdRng::seed_from_u64(4);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
        };
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
        Fixture { corpus, tokenized, explicit, train }
    }

    fn make_ctx(f: &Fixture) -> ExperimentContext<'_> {
        ExperimentContext {
            corpus: &f.corpus,
            tokenized: &f.tokenized,
            explicit: &f.explicit,
            train: &f.train,
            mode: LabelMode::Binary,
            seed: 9,
        }
    }

    fn quick_train(ctx: &ExperimentContext<'_>) -> TrainedFakeDetector {
        let config = crate::FakeDetectorConfig {
            epochs: 1,
            validation_fraction: 0.0,
            ..crate::FakeDetectorConfig::default()
        };
        FakeDetector::new(config).fit(ctx)
    }

    fn sample_requests(f: &Fixture) -> Vec<ScoreRequest> {
        let graph = &f.corpus.graph;
        vec![
            ScoreRequest::article(
                f.corpus.articles[0].text.clone(),
                graph.author_of(0),
                graph.subjects_of_article(0).to_vec(),
            ),
            ScoreRequest::article("breaking claims about the economy".to_string(), None, vec![]),
            ScoreRequest::creator(
                f.corpus.creators[1].profile.clone(),
                graph.articles_of_creator(1).to_vec(),
            ),
            ScoreRequest::subject(
                f.corpus.subjects[0].description.clone(),
                graph.articles_of_subject(0).to_vec(),
            ),
            ScoreRequest::article(
                "senate votes on the new healthcare bill".to_string(),
                Some(2),
                vec![0, 1],
            ),
        ]
    }

    /// The serving contract: scoring a request inside any batch is
    /// bitwise identical to scoring it alone.
    #[test]
    fn score_batch_is_bitwise_identical_to_singletons() {
        let f = fixture();
        let ctx = make_ctx(&f);
        let trained = quick_train(&ctx);
        let states = trained.diffused_states(&ctx);
        let requests = sample_requests(&f);

        let together = trained.score_batch(&ctx, &states, &requests).unwrap();
        for (i, req) in requests.iter().enumerate() {
            let alone =
                trained.score_batch(&ctx, &states, std::slice::from_ref(req)).unwrap();
            let (a, b) = (&alone[0], &together[i]);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "request {i}: {x} vs {y}");
            }
        }
    }

    /// The batched article path must agree bitwise with the original
    /// per-request tape path (`score_new_article`).
    #[test]
    fn score_batch_matches_score_new_article_bitwise() {
        let f = fixture();
        let ctx = make_ctx(&f);
        let trained = quick_train(&ctx);
        let states = trained.diffused_states(&ctx);

        let cases = [
            ("new claims about medicare spending", Some(1), vec![0, 2]),
            ("no neighbours at all", None, vec![]),
            ("only subjects", None, vec![1]),
        ];
        for (text, creator, subjects) in cases {
            let reference = trained.score_new_article(&ctx, text, creator, &subjects);
            let req = ScoreRequest::article(text, creator, subjects.clone());
            let batched = trained.score_batch(&ctx, &states, &[req]).unwrap();
            assert_eq!(reference.len(), batched[0].len());
            for (x, y) in reference.iter().zip(&batched[0]) {
                assert_eq!(x.to_bits(), y.to_bits(), "{text}: {x} vs {y}");
            }
        }
    }

    /// Bad neighbour indices come back as `Err`, never a panic, and name
    /// the offending request.
    #[test]
    fn score_batch_rejects_bad_requests() {
        let f = fixture();
        let ctx = make_ctx(&f);
        let trained = quick_train(&ctx);
        let states = trained.diffused_states(&ctx);

        let out_of_range = ScoreRequest::article("x", Some(usize::MAX), vec![]);
        let err = trained.score_batch(&ctx, &states, &[out_of_range]).unwrap_err();
        assert!(err.contains("request 0"), "{err}");
        assert!(err.contains("out of range"), "{err}");

        let misdirected = ScoreRequest {
            node_type: fd_graph::NodeType::Creator,
            text: "x".into(),
            creator: Some(0),
            subjects: vec![],
            articles: vec![],
        };
        let err = trained.score_batch(&ctx, &states, &[misdirected]).unwrap_err();
        assert!(err.contains("articles"), "{err}");
    }

    /// `score_batch` must be invariant to `FD_THREADS`.
    #[test]
    fn score_batch_is_thread_invariant() {
        let f = fixture();
        let ctx = make_ctx(&f);
        let trained = quick_train(&ctx);
        let requests = sample_requests(&f);
        let run = |threads: usize| {
            fd_tensor::parallel::with_thread_count(threads, || {
                let states = trained.diffused_states(&ctx);
                trained.score_batch(&ctx, &states, &requests).unwrap()
            })
        };
        let (one, four) = (run(1), run(4));
        for (a, b) in one.iter().zip(&four) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

//! The Gated Diffusive Unit (Section 4.2, Figure 3(b)).
//!
//! For an entity with own features `x` and neighbour-state inputs `z`
//! (e.g. subjects, for an article) and `t` (e.g. its creator):
//!
//! ```text
//! f = σ(W_f [x,z,t])            forget gate      z̃ = f ⊗ z
//! e = σ(W_e [x,z,t])            adjust gate      t̃ = e ⊗ t
//! g = σ(W_g [x,z,t])            selection gate 1
//! r = σ(W_r [x,z,t])            selection gate 2
//! h =   g ⊗ r ⊗ tanh(W_u [x, z̃, t̃])
//!     ⊕ (1-g) ⊗ r ⊗ tanh(W_u [x, z, t̃])
//!     ⊕ g ⊗ (1-r) ⊗ tanh(W_u [x, z̃, t])
//!     ⊕ (1-g) ⊗ (1-r) ⊗ tanh(W_u [x, z, t])
//! ```
//!
//! All five weight matrices map `(x_dim + 2·hidden) → hidden`; nodes with
//! fewer than two neighbour types feed `0` into the unused port, exactly
//! as the paper prescribes.

use fd_autograd::Var;
use fd_nn::{Binding, ParamId, Params};
use fd_tensor::{stable_sigmoid, xavier_uniform, Matrix, QuantMatrix};
use rand::Rng;

/// One GDU parameter set (shared across diffusion rounds for one node
/// type).
#[derive(Debug, Clone, Copy)]
pub struct GduCell {
    wf: ParamId,
    we: ParamId,
    wg: ParamId,
    wr: ParamId,
    wu: ParamId,
    x_dim: usize,
    hidden: usize,
}

impl GduCell {
    /// Allocates the five gate matrices under `{name}.*`.
    pub fn new(
        params: &mut Params,
        name: &str,
        x_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let in_dim = x_dim + 2 * hidden;
        let wf = params.get_or_insert(&format!("{name}.wf"), || xavier_uniform(in_dim, hidden, rng));
        let we = params.get_or_insert(&format!("{name}.we"), || xavier_uniform(in_dim, hidden, rng));
        let wg = params.get_or_insert(&format!("{name}.wg"), || xavier_uniform(in_dim, hidden, rng));
        let wr = params.get_or_insert(&format!("{name}.wr"), || xavier_uniform(in_dim, hidden, rng));
        let wu = params.get_or_insert(&format!("{name}.wu"), || xavier_uniform(in_dim, hidden, rng));
        Self { wf, we, wg, wr, wu, x_dim, hidden }
    }

    /// One GDU evaluation over `n` nodes at once (`n = 1` is the
    /// per-node case). `x` is `n x x_dim`; `z` and `t_in` are
    /// `n x hidden` neighbour states (pass a zero leaf for an unused
    /// port). `use_gates = false` is the no-gates ablation: forget and
    /// adjust become identity. Row `i` of the result is bit-identical to
    /// evaluating row `i` alone — every op here is row-independent.
    pub fn forward(&self, bind: &Binding, x: Var, z: Var, t_in: Var, use_gates: bool) -> Var {
        let t = bind.tape();
        debug_assert_eq!(t.shape(x).1, self.x_dim, "GDU x width mismatch");
        debug_assert_eq!(t.shape(z), (t.shape(x).0, self.hidden), "GDU z shape mismatch");
        debug_assert_eq!(t.shape(t_in), (t.shape(x).0, self.hidden), "GDU t shape mismatch");
        let xzt = t.concat3(x, z, t_in);

        let (z_tilde, t_tilde) = if use_gates {
            let f = t.sigmoid(t.matmul(xzt, bind.var(self.wf)));
            let e = t.sigmoid(t.matmul(xzt, bind.var(self.we)));
            (t.mul(f, z), t.mul(e, t_in))
        } else {
            (z, t_in)
        };

        let g = t.sigmoid(t.matmul(xzt, bind.var(self.wg)));
        let r = t.sigmoid(t.matmul(xzt, bind.var(self.wr)));
        let og = t.one_minus(g);
        let or = t.one_minus(r);

        let branch = |zz: Var, tt: Var| -> Var {
            let cat = t.concat3(x, zz, tt);
            t.tanh(t.matmul(cat, bind.var(self.wu)))
        };
        let b1 = branch(z_tilde, t_tilde);
        let b2 = branch(z, t_tilde);
        let b3 = branch(z_tilde, t_in);
        let b4 = branch(z, t_in);

        let p1 = t.mul(t.mul(g, r), b1);
        let p2 = t.mul(t.mul(og, r), b2);
        let p3 = t.mul(t.mul(g, or), b3);
        let p4 = t.mul(t.mul(og, or), b4);
        t.sum_n(&[p1, p2, p3, p4])
    }

    /// Tape-free batched twin of [`GduCell::forward`]: evaluates the GDU
    /// for `n` nodes at once. `x` is `n x x_dim`; `z` and `t_in` are
    /// `n x hidden`. Row `i` of the result is bit-identical to running
    /// row `i` through the tape path on its own — the blocked matmul
    /// reduces each output element in the same fixed order regardless of
    /// batch size, and every other op here is elementwise.
    pub fn forward_matrix(
        &self,
        params: &Params,
        x: &Matrix,
        z: &Matrix,
        t_in: &Matrix,
        use_gates: bool,
    ) -> Matrix {
        debug_assert_eq!(x.cols(), self.x_dim, "GDU x width mismatch");
        debug_assert_eq!(z.cols(), self.hidden, "GDU z width mismatch");
        debug_assert_eq!(t_in.cols(), self.hidden, "GDU t width mismatch");
        let xzt = x.concat_cols(z).concat_cols(t_in);
        let gate = |w: ParamId| xzt.matmul(params.value(w)).map(stable_sigmoid);

        let (z_tilde, t_tilde) = if use_gates {
            (gate(self.wf).mul(z), gate(self.we).mul(t_in))
        } else {
            (z.clone(), t_in.clone())
        };

        let g = gate(self.wg);
        let r = gate(self.wr);
        let og = g.map(|v| 1.0 - v);
        let or = r.map(|v| 1.0 - v);

        let branch = |zz: &Matrix, tt: &Matrix| -> Matrix {
            x.concat_cols(zz).concat_cols(tt).matmul(params.value(self.wu)).map(f32::tanh)
        };
        let b1 = branch(&z_tilde, &t_tilde);
        let b2 = branch(z, &t_tilde);
        let b3 = branch(&z_tilde, t_in);
        let b4 = branch(z, t_in);

        // Same association as the tape path: (g*r)*b, then a left-to-right
        // sum — `sum_n` adds terms in list order.
        let p1 = g.mul(&r).mul(&b1);
        let p2 = og.mul(&r).mul(&b2);
        let p3 = g.mul(&or).mul(&b3);
        let p4 = og.mul(&or).mul(&b4);
        p1.add(&p2).add(&p3).add(&p4)
    }

    /// GDU state width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Expected `x` width.
    pub fn x_dim(&self) -> usize {
        self.x_dim
    }

    /// The five parameter handles (for the regulariser).
    pub fn param_ids(&self) -> Vec<ParamId> {
        vec![self.wf, self.we, self.wg, self.wr, self.wu]
    }

    /// Builds the int8 serving twin of this cell: all five gate
    /// matrices quantized per output column (see
    /// [`fd_tensor::QuantMatrix`]); dimensions and gate wiring carry
    /// over unchanged.
    pub fn quantize(&self, params: &Params) -> QuantGdu {
        let q = |w: ParamId| QuantMatrix::from_matrix(params.value(w));
        QuantGdu {
            wf: q(self.wf),
            we: q(self.we),
            wg: q(self.wg),
            wr: q(self.wr),
            wu: q(self.wu),
        }
    }
}

/// Reduced-precision serving twin of [`GduCell`]: the same gate wiring
/// as [`GduCell::forward_matrix`], with every `xzt · W` product running
/// through int8 weights and exact integer accumulation. Activations
/// (sigmoid/tanh/elementwise products) stay in f32. Inference only.
#[derive(Debug, Clone)]
pub struct QuantGdu {
    wf: QuantMatrix,
    we: QuantMatrix,
    wg: QuantMatrix,
    wr: QuantMatrix,
    wu: QuantMatrix,
}

impl QuantGdu {
    /// Quantized twin of [`GduCell::forward_matrix`]: identical control
    /// flow and elementwise arithmetic, int8 matrix products. The
    /// integer accumulation is order-independent, so the result is
    /// bit-identical at any `FD_THREADS`.
    pub fn forward_matrix(&self, x: &Matrix, z: &Matrix, t_in: &Matrix, use_gates: bool) -> Matrix {
        let xzt = x.concat_cols(z).concat_cols(t_in);
        let gate = |w: &QuantMatrix| w.matmul_quant(&xzt).map(stable_sigmoid);

        let (z_tilde, t_tilde) = if use_gates {
            (gate(&self.wf).mul(z), gate(&self.we).mul(t_in))
        } else {
            (z.clone(), t_in.clone())
        };

        let g = gate(&self.wg);
        let r = gate(&self.wr);
        let og = g.map(|v| 1.0 - v);
        let or = r.map(|v| 1.0 - v);

        let branch = |zz: &Matrix, tt: &Matrix| -> Matrix {
            self.wu.matmul_quant(&x.concat_cols(zz).concat_cols(tt)).map(f32::tanh)
        };
        let b1 = branch(&z_tilde, &t_tilde);
        let b2 = branch(z, &t_tilde);
        let b3 = branch(&z_tilde, t_in);
        let b4 = branch(z, t_in);

        let p1 = g.mul(&r).mul(&b1);
        let p2 = og.mul(&r).mul(&b2);
        let p3 = g.mul(&or).mul(&b3);
        let p4 = og.mul(&or).mul(&b4);
        p1.add(&p2).add(&p3).add(&p4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_autograd::{grad_check, Tape};
    use fd_tensor::Matrix;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup(x_dim: usize, hidden: usize) -> (Params, GduCell) {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(5);
        let cell = GduCell::new(&mut params, "gdu", x_dim, hidden, &mut rng);
        (params, cell)
    }

    #[test]
    fn output_shape_and_bounds() {
        let (params, cell) = setup(6, 4);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let x = tape.leaf(Matrix::filled(1, 6, 0.3));
        let z = tape.leaf(Matrix::filled(1, 4, -0.2));
        let ti = tape.leaf(Matrix::filled(1, 4, 0.1));
        let h = cell.forward(&bind, x, z, ti, true);
        assert_eq!(tape.shape(h), (1, 4));
        // Convex mix of tanh branches: |h| <= 1 everywhere.
        assert!(tape.value(h).max_abs() <= 1.0 + 1e-6);
    }

    #[test]
    fn gate_convexity_identity() {
        // The four gate products sum to 1 elementwise, so with all
        // branches equal the output equals that branch. Force equality by
        // zeroing z and t: then z̃ = z = 0, t̃ = t = 0 and all four
        // branches see the same input.
        let (params, cell) = setup(5, 3);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let x = tape.leaf(Matrix::filled(1, 5, 0.7));
        let zero = tape.leaf(Matrix::zeros(1, 3));
        let h = cell.forward(&bind, x, zero, zero, true);
        // Compute the single branch by hand.
        let xzt = tape.concat3(x, zero, zero);
        let branch = tape.tanh(tape.matmul(xzt, bind.var(cell.wu)));
        fd_tensor::assert_close(&tape.value(h), &tape.value(branch), 1e-5);
    }

    #[test]
    fn gates_change_output_when_inputs_nonzero() {
        let (params, cell) = setup(5, 3);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let x = tape.leaf(Matrix::filled(1, 5, 0.4));
        let z = tape.leaf(Matrix::filled(1, 3, 0.9));
        let ti = tape.leaf(Matrix::filled(1, 3, -0.8));
        let gated = cell.forward(&bind, x, z, ti, true);
        let ungated = cell.forward(&bind, x, z, ti, false);
        assert_ne!(tape.value(gated), tape.value(ungated));
    }

    #[test]
    fn full_cell_gradchecks_through_params() {
        // Check gradients w.r.t. the inputs *and* all five weights by
        // rebuilding the cell inside the closure over leaf matrices.
        let mut rng = StdRng::seed_from_u64(9);
        let (x_dim, h) = (3, 3);
        let in_dim = x_dim + 2 * h;
        let inputs = vec![
            fd_tensor::uniform_in(1, x_dim, -1.0, 1.0, &mut rng),
            fd_tensor::uniform_in(1, h, -1.0, 1.0, &mut rng),
            fd_tensor::uniform_in(1, h, -1.0, 1.0, &mut rng),
            fd_tensor::uniform_in(in_dim, h, -0.7, 0.7, &mut rng),
            fd_tensor::uniform_in(in_dim, h, -0.7, 0.7, &mut rng),
            fd_tensor::uniform_in(in_dim, h, -0.7, 0.7, &mut rng),
            fd_tensor::uniform_in(in_dim, h, -0.7, 0.7, &mut rng),
            fd_tensor::uniform_in(in_dim, h, -0.7, 0.7, &mut rng),
        ];
        let report = grad_check(
            &inputs,
            |t, v| {
                // Inline GDU over leaves (mirrors GduCell::forward).
                let (x, z, ti) = (v[0], v[1], v[2]);
                let (wf, we, wg, wr, wu) = (v[3], v[4], v[5], v[6], v[7]);
                let xzt = t.concat3(x, z, ti);
                let f = t.sigmoid(t.matmul(xzt, wf));
                let e = t.sigmoid(t.matmul(xzt, we));
                let zt = t.mul(f, z);
                let tt = t.mul(e, ti);
                let g = t.sigmoid(t.matmul(xzt, wg));
                let r = t.sigmoid(t.matmul(xzt, wr));
                let og = t.one_minus(g);
                let or = t.one_minus(r);
                let branch = |zz, t2| {
                    let cat = t.concat3(x, zz, t2);
                    t.tanh(t.matmul(cat, wu))
                };
                let p1 = t.mul(t.mul(g, r), branch(zt, tt));
                let p2 = t.mul(t.mul(og, r), branch(z, tt));
                let p3 = t.mul(t.mul(g, or), branch(zt, ti));
                let p4 = t.mul(t.mul(og, or), branch(z, ti));
                let h_out = t.sum_n(&[p1, p2, p3, p4]);
                t.square_norm(h_out)
            },
            1e-2,
        );
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn five_parameters_allocated() {
        let (params, cell) = setup(4, 4);
        assert_eq!(params.len(), 5);
        assert_eq!(cell.param_ids().len(), 5);
        assert_eq!(cell.hidden(), 4);
        assert_eq!(cell.x_dim(), 4);
    }
}

//! Development harness: sweeps FakeDetector hyper-parameters against the
//! SVM and LP baselines on a small corpus. Run with
//! `cargo run --release -p fd-core --example tune`.

use fd_baselines::{Propagation, SvmBaseline};
use fd_core::{FakeDetector, FakeDetectorConfig};
use fd_data::{
    generate, sample_ratio, CredibilityModel, CvSplits, ExplicitFeatures, GeneratorConfig,
    LabelMode, Predictions, TokenizedCorpus, TrainSets,
};
use fd_graph::NodeType;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(33u64);
    let scale = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(0.015f64);
    let corpus = generate(&GeneratorConfig::politifact().scaled(scale), seed);
    let tokenized = TokenizedCorpus::build(&corpus, 12, 4000);
    let mut rng = StdRng::seed_from_u64(seed ^ 7);
    let a = CvSplits::new(corpus.articles.len(), 10, &mut rng);
    let c = CvSplits::new(corpus.creators.len(), 10, &mut rng);
    let s = CvSplits::new(corpus.subjects.len(), 6, &mut rng);
    let (a_train, a_test) = a.fold(0);
    let (c_train, c_test) = c.fold(0);
    let (s_train, s_test) = s.fold(0);
    let train = TrainSets {
        articles: sample_ratio(&a_train, 1.0, &mut rng),
        creators: sample_ratio(&c_train, 1.0, &mut rng),
        subjects: sample_ratio(&s_train, 1.0, &mut rng),
    };
    let test = TrainSets { articles: a_test, creators: c_test, subjects: s_test };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 60);
    let ctx = fd_data::ExperimentContext {
        corpus: &corpus,
        tokenized: &tokenized,
        explicit: &explicit,
        train: &train,
        mode: LabelMode::Binary,
        seed: 77,
    };

    let acc = |preds: &Predictions, ty: NodeType| -> f64 {
        let ids = test.for_type(ty);
        let correct = ids
            .iter()
            .filter(|&&i| {
                let truth = match ty {
                    NodeType::Article => corpus.articles[i].label,
                    NodeType::Creator => corpus.creators[i].label,
                    NodeType::Subject => corpus.subjects[i].label,
                };
                preds.for_type(ty)[i] == LabelMode::Binary.target(truth)
            })
            .count();
        correct as f64 / ids.len() as f64
    };

    let svm = SvmBaseline::default().fit_predict(&ctx);
    let lp = Propagation::default().fit_predict(&ctx);
    println!(
        "svm  art {:.3} cre {:.3} sub {:.3}",
        acc(&svm, NodeType::Article),
        acc(&svm, NodeType::Creator),
        acc(&svm, NodeType::Subject)
    );
    println!(
        "lp   art {:.3} cre {:.3} sub {:.3}",
        acc(&lp, NodeType::Article),
        acc(&lp, NodeType::Creator),
        acc(&lp, NodeType::Subject)
    );

    for (label, cfg) in [
        ("default", FakeDetectorConfig::default()),
        ("e300 lr3e-2 p50", FakeDetectorConfig { epochs: 300, lr: 3e-2, patience: 50, ..Default::default() }),
        ("e300 h48", FakeDetectorConfig { epochs: 300, lr: 3e-2, patience: 50, gdu_hidden: 48, ..Default::default() }),
    ] {
        let t0 = std::time::Instant::now();
        let (preds, report) = FakeDetector::new(cfg).fit_predict_with_report(&ctx);
        println!(
            "FD {label:14} art {:.3} cre {:.3} sub {:.3}  loss {:.1}->{:.1}  ({:.1}s)",
            acc(&preds, NodeType::Article),
            acc(&preds, NodeType::Creator),
            acc(&preds, NodeType::Subject),
            report.losses[0],
            report.losses.last().unwrap(),
            t0.elapsed().as_secs_f64()
        );
    }
}

//! Regression tests pinning the batched tape-free inference path to the
//! per-node tape path: `predict` (batched) must return exactly the same
//! predictions as `predict_per_node` (reference), for the full model and
//! for every ablation, at any `FD_THREADS` setting.

use fd_core::{FakeDetector, FakeDetectorConfig};
use fd_data::{
    generate, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
    TokenizedCorpus, TrainSets,
};
use fd_tensor::parallel::with_thread_count;
use rand::{rngs::StdRng, SeedableRng};

struct Fixture {
    corpus: fd_data::Corpus,
    tokenized: TokenizedCorpus,
    explicit: ExplicitFeatures,
    train: TrainSets,
}

fn fixture() -> Fixture {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), 17);
    let tokenized = TokenizedCorpus::build(&corpus, 12, 3000);
    let mut rng = StdRng::seed_from_u64(4);
    let train = TrainSets {
        articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
        creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
        subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
    };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
    Fixture { corpus, tokenized, explicit, train }
}

fn ctx(f: &Fixture) -> ExperimentContext<'_> {
    ExperimentContext {
        corpus: &f.corpus,
        tokenized: &f.tokenized,
        explicit: &f.explicit,
        train: &f.train,
        mode: LabelMode::Binary,
        seed: 11,
    }
}

fn assert_parity(config: FakeDetectorConfig) {
    let f = fixture();
    let c = ctx(&f);
    let trained = FakeDetector::new(config).fit(&c);
    assert_eq!(trained.predict(&c), trained.predict_per_node(&c));
}

fn quick(overrides: impl FnOnce(&mut FakeDetectorConfig)) -> FakeDetectorConfig {
    let mut config = FakeDetectorConfig { epochs: 2, ..FakeDetectorConfig::default() };
    overrides(&mut config);
    config
}

#[test]
fn batched_predict_matches_per_node_full_model() {
    assert_parity(quick(|_| ()));
}

#[test]
fn batched_predict_matches_per_node_without_latent() {
    assert_parity(quick(|c| c.use_latent = false));
}

#[test]
fn batched_predict_matches_per_node_without_explicit() {
    assert_parity(quick(|c| c.use_explicit = false));
}

#[test]
fn batched_predict_matches_per_node_without_gates() {
    assert_parity(quick(|c| c.use_gates = false));
}

#[test]
fn batched_predict_matches_per_node_without_diffusion() {
    assert_parity(quick(|c| c.use_diffusion = false));
}

/// Training with the batched epoch graph must reproduce the per-node
/// reference run end to end on a seeded smoke config: bit-equal first
/// loss, the same early-stopping epoch, and matching final predictions.
#[test]
fn batched_training_reproduces_per_node_early_stopping() {
    let f = fixture();
    let c = ctx(&f);
    let config = FakeDetectorConfig {
        epochs: 12,
        validation_fraction: 0.3,
        patience: 2,
        batched_training: false,
        ..FakeDetectorConfig::default()
    };
    let reference = FakeDetector::new(config.clone()).fit(&c);
    let batched =
        FakeDetector::new(FakeDetectorConfig { batched_training: true, ..config }).fit(&c);
    let (ref_report, bat_report) = (reference.report(), batched.report());
    assert_eq!(
        ref_report.losses[0].to_bits(),
        bat_report.losses[0].to_bits(),
        "first-epoch loss diverged: {} vs {}",
        ref_report.losses[0],
        bat_report.losses[0]
    );
    assert_eq!(
        ref_report.losses.len(),
        bat_report.losses.len(),
        "early stopping fired at different epochs"
    );
    assert_eq!(reference.predict(&c), batched.predict(&c));
}

#[test]
fn batched_outputs_invariant_under_thread_count() {
    let f = fixture();
    let c = ctx(&f);
    let trained = FakeDetector::new(quick(|_| ())).fit(&c);
    let (pred1, proba1) =
        with_thread_count(1, || (trained.predict(&c), trained.predict_proba(&c)));
    for threads in [2, 8] {
        let (pred, proba) =
            with_thread_count(threads, || (trained.predict(&c), trained.predict_proba(&c)));
        assert_eq!(pred1, pred, "predictions diverged at FD_THREADS={threads}");
        assert_eq!(proba1, proba, "probabilities diverged at FD_THREADS={threads}");
    }
}

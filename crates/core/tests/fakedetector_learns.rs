//! End-to-end checks on the full FakeDetector: it trains (loss drops),
//! predicts validly, is deterministic, and beats the strongest
//! single-signal baseline on the joint task — the paper's headline claim
//! in miniature.

use fd_core::{FakeDetector, FakeDetectorConfig};
use fd_data::{
    generate, sample_ratio, Corpus, CredibilityModel, CvSplits, ExplicitFeatures,
    GeneratorConfig, LabelMode, Predictions, TokenizedCorpus, TrainSets,
};
use fd_graph::NodeType;
use fd_metrics::ConfusionMatrix;
use rand::{rngs::StdRng, SeedableRng};

struct Fixture {
    corpus: Corpus,
    tokenized: TokenizedCorpus,
    explicit: ExplicitFeatures,
    train: TrainSets,
    test: TrainSets, // same container type, holding the test indices
}

fn fixture(seed: u64, theta: f64) -> Fixture {
    fixture_at(seed, theta, 0.015)
}

fn fixture_at(seed: u64, theta: f64, scale: f64) -> Fixture {
    let corpus = generate(&GeneratorConfig::politifact().scaled(scale), seed);
    let tokenized = TokenizedCorpus::build(&corpus, 12, 4000);
    let mut rng = StdRng::seed_from_u64(seed ^ 7);
    let a = CvSplits::new(corpus.articles.len(), 10, &mut rng);
    let c = CvSplits::new(corpus.creators.len(), 10, &mut rng);
    let s = CvSplits::new(corpus.subjects.len(), 6, &mut rng);
    let (a_train, a_test) = a.fold(0);
    let (c_train, c_test) = c.fold(0);
    let (s_train, s_test) = s.fold(0);
    let train = TrainSets {
        articles: sample_ratio(&a_train, theta, &mut rng),
        creators: sample_ratio(&c_train, theta, &mut rng),
        subjects: sample_ratio(&s_train, theta, &mut rng),
    };
    let test = TrainSets { articles: a_test, creators: c_test, subjects: s_test };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 60);
    Fixture { corpus, tokenized, explicit, train, test }
}

fn ctx<'a>(f: &'a Fixture, mode: LabelMode) -> fd_data::ExperimentContext<'a> {
    fd_data::ExperimentContext {
        corpus: &f.corpus,
        tokenized: &f.tokenized,
        explicit: &f.explicit,
        train: &f.train,
        mode,
        seed: 77,
    }
}

fn test_accuracy(f: &Fixture, preds: &Predictions, ty: NodeType, mode: LabelMode) -> f64 {
    let mut cm = ConfusionMatrix::new(mode.n_classes());
    for &i in f.test.for_type(ty) {
        let truth = match ty {
            NodeType::Article => f.corpus.articles[i].label,
            NodeType::Creator => f.corpus.creators[i].label,
            NodeType::Subject => f.corpus.subjects[i].label,
        };
        cm.record(mode.target(truth), preds.for_type(ty)[i]);
    }
    cm.accuracy()
}

fn quick_config() -> FakeDetectorConfig {
    FakeDetectorConfig { epochs: 60, ..FakeDetectorConfig::default() }
}

#[test]
fn loss_decreases_during_training() {
    let f = fixture(31, 1.0);
    let c = ctx(&f, LabelMode::Binary);
    let model = FakeDetector::new(quick_config());
    let (_, report) = model.fit_predict_with_report(&c);
    // Early stopping may end training before the epoch cap.
    assert!(!report.losses.is_empty() && report.losses.len() <= 60);
    let first = report.losses[0];
    let last = *report.losses.last().unwrap();
    assert!(
        last < first * 0.8,
        "loss did not drop: {first} -> {last} ({:?})",
        &report.losses[..5]
    );
    assert!(report.losses.iter().all(|l| l.is_finite()), "loss went non-finite");
}

#[test]
fn predictions_are_valid_and_deterministic() {
    let f = fixture(32, 0.5);
    let c = ctx(&f, LabelMode::MultiClass);
    let model = FakeDetector::new(FakeDetectorConfig { epochs: 6, ..quick_config() });
    let p1 = model.fit_predict(&c);
    let p2 = model.fit_predict(&c);
    assert_eq!(p1, p2, "FakeDetector is not deterministic");
    assert_eq!(p1.articles.len(), f.corpus.articles.len());
    for ty in NodeType::ALL {
        assert!(p1.for_type(ty).iter().all(|&p| p < 6));
    }
}

#[test]
// ~12 s in release (a full fit at 0.04 scale), several minutes in debug:
// run with `cargo test -- --ignored` or in the nightly/CI full pass.
#[ignore = "expensive: full training run (~12 s release); run with --ignored"]
fn generalises_above_chance_on_binary_articles() {
    // Cross-model rankings at this miniature scale are coin-flip noisy;
    // the paper-shape comparison (FakeDetector top accuracy/precision on
    // articles across θ) is produced by the fig4 sweep and recorded in
    // EXPERIMENTS.md. Here we assert the stable properties: the model
    // fits its training data and transfers above chance to held-out
    // articles.
    let f = fixture_at(55, 1.0, 0.04);
    let c = ctx(&f, LabelMode::Binary);
    let preds = FakeDetector::new(quick_config()).fit_predict(&c);
    let test_acc = test_accuracy(&f, &preds, NodeType::Article, LabelMode::Binary);
    assert!(test_acc > 0.55, "held-out article accuracy only {test_acc:.3}");
    let train_correct = f
        .train
        .articles
        .iter()
        .filter(|&&i| {
            preds.articles[i] == LabelMode::Binary.target(f.corpus.articles[i].label)
        })
        .count();
    let train_acc = train_correct as f64 / f.train.articles.len() as f64;
    assert!(train_acc > 0.75, "training article accuracy only {train_acc:.3}");
    // And it must not be a constant classifier.
    let positives: usize = preds.articles.iter().sum();
    assert!(positives > 0 && positives < preds.articles.len());
}

#[test]
fn ablation_without_diffusion_changes_predictions() {
    let f = fixture(34, 1.0);
    let c = ctx(&f, LabelMode::Binary);
    let full = FakeDetector::new(FakeDetectorConfig { epochs: 8, ..quick_config() });
    let no_diff = FakeDetector::new(FakeDetectorConfig {
        epochs: 8,
        use_diffusion: false,
        ..quick_config()
    });
    assert_ne!(full.fit_predict(&c), no_diff.fit_predict(&c));
}

#[test]
fn runs_in_every_ablation_mode() {
    let f = fixture(35, 0.5);
    let c = ctx(&f, LabelMode::Binary);
    for (explicit, latent) in [(true, false), (false, true)] {
        let model = FakeDetector::new(FakeDetectorConfig {
            epochs: 3,
            use_explicit: explicit,
            use_latent: latent,
            ..FakeDetectorConfig::default()
        });
        let p = model.fit_predict(&c);
        assert_eq!(p.articles.len(), f.corpus.articles.len());
    }
    let no_gates = FakeDetector::new(FakeDetectorConfig {
        epochs: 3,
        use_gates: false,
        ..FakeDetectorConfig::default()
    });
    let _ = no_gates.fit_predict(&c);
}

#[test]
fn more_diffusion_rounds_still_trains() {
    let f = fixture(36, 0.5);
    let c = ctx(&f, LabelMode::Binary);
    let model = FakeDetector::new(FakeDetectorConfig {
        epochs: 5,
        diffusion_rounds: 3,
        ..FakeDetectorConfig::default()
    });
    let (_, report) = model.fit_predict_with_report(&c);
    assert!(report.losses.iter().all(|l| l.is_finite()));
}

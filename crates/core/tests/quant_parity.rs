//! Accuracy-parity gate for the int8 serving path (`QuantModel`).
//!
//! The quantized scorer is only allowed to ship while it stays within
//! tight agreement of the exact f32 reference on a seeded corpus:
//! max |Δscore| ≤ 4e-3 (measured ~2e-3; int8 weight rounding through
//! five stacked GDU matmuls sits above the 1e-3 bound that the exact
//! `--precision f32` path meets with delta 0) and *identical* arg-max
//! labels for every request. These tests are that gate — loosening
//! them is a product decision, not a test fix.

use fd_core::{FakeDetector, FakeDetectorConfig, ScoreRequest, TrainedFakeDetector};
use fd_data::{
    generate, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
    TokenizedCorpus, TrainSets,
};
use rand::{rngs::StdRng, SeedableRng};

struct Fixture {
    corpus: fd_data::Corpus,
    tokenized: TokenizedCorpus,
    explicit: ExplicitFeatures,
    train: TrainSets,
}

fn fixture() -> Fixture {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.012), 55);
    let tokenized = TokenizedCorpus::build(&corpus, 10, 4000);
    let mut rng = StdRng::seed_from_u64(2);
    let train = TrainSets {
        articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
        creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
        subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
    };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
    Fixture { corpus, tokenized, explicit, train }
}

fn ctx(f: &Fixture) -> ExperimentContext<'_> {
    ExperimentContext {
        corpus: &f.corpus,
        tokenized: &f.tokenized,
        explicit: &f.explicit,
        train: &f.train,
        mode: LabelMode::Binary,
        seed: 9,
    }
}

fn quick_fit(f: &Fixture) -> TrainedFakeDetector {
    let c = ctx(f);
    FakeDetector::new(FakeDetectorConfig { epochs: 6, ..Default::default() }).fit(&c)
}

/// A mixed batch covering all three node types and several neighbour
/// shapes, built from a fixed word pool so the run is fully seeded.
fn seeded_requests(f: &Fixture) -> Vec<ScoreRequest> {
    let pool = [
        "federal budget report shows unemployment decline percent census",
        "obamacare hoax conspiracy rigged fraud banned secret takeover",
        "governor signed education funding bill legislature session vote",
        "shocking truth they hide miracle cure exposed scandal cover",
        "state revenue tax audit analysis fiscal committee statement",
    ];
    let n_articles = f.corpus.articles.len();
    let n_creators = f.corpus.creators.len();
    let n_subjects = f.corpus.subjects.len();
    let mut reqs = Vec::new();
    for (i, text) in pool.iter().enumerate() {
        reqs.push(ScoreRequest::article(
            *text,
            Some(i % n_creators),
            vec![i % n_subjects, (i + 1) % n_subjects],
        ));
        reqs.push(ScoreRequest::creator(*text, vec![i % n_articles, (i + 2) % n_articles]));
        reqs.push(ScoreRequest::subject(*text, vec![(i + 1) % n_articles]));
    }
    reqs
}

#[test]
fn quantized_scores_match_reference_within_tolerance() {
    let f = fixture();
    let c = ctx(&f);
    let trained = quick_fit(&f);
    let states = trained.diffused_states(&c);
    let quant = trained.quantize();
    let reqs = seeded_requests(&f);

    let exact = trained.score_batch(&c, &states, &reqs).expect("exact batch");
    let quantized = trained.score_batch_quant(&c, &states, &reqs, &quant).expect("quant batch");
    assert_eq!(exact.len(), quantized.len());

    let mut max_delta = 0.0f32;
    for (i, (e, q)) in exact.iter().zip(&quantized).enumerate() {
        assert_eq!(e.len(), q.len(), "request {i}");
        let sum: f32 = q.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "request {i}: quant scores sum to {sum}");
        for (a, b) in e.iter().zip(q) {
            max_delta = max_delta.max((a - b).abs());
        }
        let argmax = |p: &[f32]| if p[1] > p[0] { 1 } else { 0 };
        assert_eq!(argmax(e), argmax(q), "request {i}: label flipped under int8");
    }
    assert!(max_delta <= 4e-3, "max |Δscore| {max_delta} exceeds the 4e-3 parity gate");
}

#[test]
fn quantized_scoring_is_thread_invariant() {
    let f = fixture();
    let c = ctx(&f);
    let trained = quick_fit(&f);
    let states = trained.diffused_states(&c);
    let quant = trained.quantize();
    let reqs = seeded_requests(&f);

    let reference = fd_tensor::parallel::with_thread_count(1, || {
        trained.score_batch_quant(&c, &states, &reqs, &quant).expect("1 thread")
    });
    for threads in [2, 3, 8] {
        let got = fd_tensor::parallel::with_thread_count(threads, || {
            trained.score_batch_quant(&c, &states, &reqs, &quant).expect("n threads")
        });
        for (i, (r, g)) in reference.iter().zip(&got).enumerate() {
            for (a, b) in r.iter().zip(g) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "request {i}: int8 path drifted at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn quantized_batching_is_order_and_composition_invariant() {
    // The exact path promises "batching never changes an answer"; the
    // int8 path must keep that promise (integer accumulation is
    // order-independent, and each row is scaled independently).
    let f = fixture();
    let c = ctx(&f);
    let trained = quick_fit(&f);
    let states = trained.diffused_states(&c);
    let quant = trained.quantize();
    let reqs = seeded_requests(&f);

    let together = trained.score_batch_quant(&c, &states, &reqs, &quant).expect("batch");
    for (i, req) in reqs.iter().enumerate() {
        let alone = trained
            .score_batch_quant(&c, &states, std::slice::from_ref(req), &quant)
            .expect("single");
        for (a, b) in together[i].iter().zip(&alone[0]) {
            assert_eq!(a.to_bits(), b.to_bits(), "request {i} differs alone vs batched");
        }
    }
}

#[test]
fn quantize_survives_json_roundtrip_of_the_source_model() {
    // Serving rebuilds the QuantModel from a deserialised bundle; the
    // twin must be a pure function of the stored weights.
    let f = fixture();
    let c = ctx(&f);
    let trained = quick_fit(&f);
    let restored = TrainedFakeDetector::from_json(&trained.to_json()).expect("roundtrip");
    let states = trained.diffused_states(&c);
    let reqs = seeded_requests(&f);

    let a = trained.score_batch_quant(&c, &states, &reqs, &trained.quantize()).expect("orig");
    let b = restored.score_batch_quant(&c, &states, &reqs, &restored.quantize()).expect("restored");
    for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

//! Durability contracts of `FakeDetector::fit_with`:
//!
//! * **bitwise resume** — a run checkpointed at epoch k and restarted
//!   from that checkpoint finishes with weights bit-identical to the
//!   uninterrupted run (same loss history, same final params JSON);
//! * **divergence guard** — a learning rate absurd enough to blow the
//!   loss up to NaN/∞ must not poison the returned weights: training
//!   rolls back, halves the rate, and still returns finite parameters.

use fd_core::{FakeDetector, FakeDetectorConfig, FitOptions};
use fd_data::{
    generate, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
    TokenizedCorpus, TrainSets,
};
use rand::{rngs::StdRng, SeedableRng};
use std::path::PathBuf;

struct Fixture {
    corpus: fd_data::Corpus,
    tokenized: TokenizedCorpus,
    explicit: ExplicitFeatures,
    train: TrainSets,
}

fn fixture() -> Fixture {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), 17);
    let tokenized = TokenizedCorpus::build(&corpus, 12, 3000);
    let mut rng = StdRng::seed_from_u64(4);
    let train = TrainSets {
        articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
        creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
        subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
    };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
    Fixture { corpus, tokenized, explicit, train }
}

fn ctx(f: &Fixture) -> ExperimentContext<'_> {
    ExperimentContext {
        corpus: &f.corpus,
        tokenized: &f.tokenized,
        explicit: &f.explicit,
        train: &f.train,
        mode: LabelMode::Binary,
        seed: 11,
    }
}

/// Fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fd-core-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quick_config(epochs: usize) -> FakeDetectorConfig {
    FakeDetectorConfig { epochs, ..FakeDetectorConfig::default() }
}

#[test]
fn resume_reproduces_uninterrupted_run_bitwise() {
    let f = fixture();
    let c = ctx(&f);
    let config = quick_config(6);

    // Control: 6 epochs straight through, checkpointing every epoch.
    let control_dir = scratch("control");
    let control = FakeDetector::new(config.clone())
        .fit_with(&c, &FitOptions::checkpointed(&control_dir, 1))
        .unwrap();

    // Interrupted: train only 3 epochs into the same kind of store...
    let resumed_dir = scratch("resumed");
    FakeDetector::new(quick_config(3))
        .fit_with(&c, &FitOptions::checkpointed(&resumed_dir, 1))
        .unwrap();
    // ...then resume with the full epoch budget (epochs is excluded
    // from the compatibility fingerprint precisely for this).
    let resumed = FakeDetector::new(config)
        .fit_with(&c, &FitOptions::checkpointed(&resumed_dir, 1).resuming())
        .unwrap();

    assert_eq!(
        control.params_json(),
        resumed.params_json(),
        "resumed weights must be bit-identical to the uninterrupted run"
    );
    let (cr, rr) = (control.report(), resumed.report());
    assert_eq!(cr.losses.len(), rr.losses.len());
    for (a, b) in cr.losses.iter().zip(&rr.losses) {
        assert_eq!(a.to_bits(), b.to_bits(), "loss history diverged");
    }
    assert_eq!(control.predict(&c), resumed.predict(&c));

    // The final checkpoint files themselves are byte-identical too —
    // wall-clock timings are deliberately not durable state. This is
    // what the CI crash-recovery job byte-diffs.
    let last = |dir: &PathBuf| {
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "fdck"))
            .collect();
        files.sort();
        std::fs::read(files.last().unwrap()).unwrap()
    };
    assert_eq!(last(&control_dir), last(&resumed_dir), "final checkpoint bytes differ");

    let _ = std::fs::remove_dir_all(&control_dir);
    let _ = std::fs::remove_dir_all(&resumed_dir);
}

#[test]
fn resume_without_checkpoint_starts_from_scratch() {
    let f = fixture();
    let c = ctx(&f);
    let dir = scratch("empty-resume");
    // Resume against an empty directory is a documented no-op.
    let a = FakeDetector::new(quick_config(2))
        .fit_with(&c, &FitOptions::checkpointed(&dir, 1).resuming())
        .unwrap();
    let b = FakeDetector::new(quick_config(2)).fit(&c);
    assert_eq!(a.params_json(), b.params_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_checkpoint_from_different_config() {
    let f = fixture();
    let c = ctx(&f);
    let dir = scratch("mismatch");
    FakeDetector::new(quick_config(2))
        .fit_with(&c, &FitOptions::checkpointed(&dir, 1))
        .unwrap();
    // Same dims/seed but different hyper-parameters: must refuse rather
    // than silently continue a different experiment.
    let other = FakeDetectorConfig { lr: 1e-4, epochs: 4, ..FakeDetectorConfig::default() };
    let result = FakeDetector::new(other)
        .fit_with(&c, &FitOptions::checkpointed(&dir, 1).resuming());
    match result {
        Ok(_) => panic!("resume with a different configuration must fail"),
        Err(err) => assert!(err.contains("configuration"), "unexpected error: {err}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_rotation_keeps_newest_files() {
    let f = fixture();
    let c = ctx(&f);
    let dir = scratch("rotation");
    let mut options = FitOptions::checkpointed(&dir, 1);
    options.checkpoint_keep = 2;
    FakeDetector::new(quick_config(5)).fit_with(&c, &options).unwrap();
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(names, ["ckpt-00000004.fdck", "ckpt-00000005.fdck"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn divergence_guard_recovers_from_nonfinite_loss() {
    let f = fixture();
    let c = ctx(&f);
    // A learning rate this absurd detonates the weights within an epoch
    // or two: the loss goes NaN/∞ and stays there at this rate. Only
    // the guard's rollback-and-halve can finish the run with usable
    // weights.
    let config = FakeDetectorConfig { lr: 1e20, epochs: 8, ..FakeDetectorConfig::default() };
    let trained = FakeDetector::new(config).fit(&c);
    let report = trained.report();
    assert!(
        report.divergence_rollbacks > 0,
        "lr=1e20 should have tripped the divergence guard"
    );
    for loss in &report.losses {
        assert!(loss.is_finite(), "recorded history must only contain surviving epochs");
    }
    // The returned weights are usable: predictions don't panic and the
    // serialised params contain no non-finite values.
    let _ = trained.predict(&c);
    let json = trained.params_json();
    assert!(!json.contains("NaN") && !json.contains("inf"), "weights were poisoned");
}

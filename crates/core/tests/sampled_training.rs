//! Contracts of `TrainMode::Sampled` (neighbour-sampled minibatch
//! training):
//!
//! * **accuracy parity** — at scale 1 the sampled run must land within
//!   ±0.01 of the full-graph run's training-set accuracy;
//! * **thread invariance** — `FD_THREADS` ∈ {1, 8} produce bit-identical
//!   loss histories and identical predictions;
//! * **bitwise resume** — a sampled run checkpointed mid-way and resumed
//!   finishes with weights bit-identical to the uninterrupted run.

use fd_core::{FakeDetector, FakeDetectorConfig, FitOptions, TrainMode};
use fd_data::{
    generate, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
    TokenizedCorpus, TrainSets,
};
use fd_tensor::parallel::with_thread_count;
use rand::{rngs::StdRng, SeedableRng};
use std::path::PathBuf;

struct Fixture {
    corpus: fd_data::Corpus,
    tokenized: TokenizedCorpus,
    explicit: ExplicitFeatures,
    train: TrainSets,
}

fn fixture() -> Fixture {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.01), 17);
    let tokenized = TokenizedCorpus::build(&corpus, 12, 3000);
    let mut rng = StdRng::seed_from_u64(4);
    let train = TrainSets {
        articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
        creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
        subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
    };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
    Fixture { corpus, tokenized, explicit, train }
}

fn ctx(f: &Fixture) -> ExperimentContext<'_> {
    ExperimentContext {
        corpus: &f.corpus,
        tokenized: &f.tokenized,
        explicit: &f.explicit,
        train: &f.train,
        mode: LabelMode::Binary,
        seed: 11,
    }
}

fn sampled(batch_size: usize, fanout: usize, rounds: usize) -> TrainMode {
    TrainMode::Sampled { batch_size, fanout, rounds }
}

/// Training-set article accuracy — the quantity the parity contract is
/// stated over (test-set accuracy on a 150-node corpus is too noisy to
/// compare runs against each other).
fn article_train_accuracy(f: &Fixture, preds: &[usize]) -> f64 {
    let hits = f
        .train
        .articles
        .iter()
        .filter(|&&i| preds[i] == LabelMode::Binary.target(f.corpus.articles[i].label))
        .count();
    hits as f64 / f.train.articles.len().max(1) as f64
}

/// At scale 1 a sampled run is a different estimator of the same
/// objective, not a different objective: with a moderate fan-out it must
/// reach the full-graph run's training accuracy to within ±0.01.
#[test]
fn sampled_training_matches_full_graph_accuracy_at_scale_1() {
    let f = fixture();
    let c = ctx(&f);
    // No validation split: both runs do the same fixed number of epochs,
    // so the comparison is plateau-vs-plateau, not stopping-time noise.
    let base = FakeDetectorConfig {
        epochs: 30,
        validation_fraction: 0.0,
        ..FakeDetectorConfig::default()
    };
    let full = FakeDetector::new(base.clone()).fit(&c);
    let cfg = FakeDetectorConfig { train_mode: sampled(24, 8, 2), ..base };
    let trained = FakeDetector::new(cfg).fit(&c);

    let acc_full = article_train_accuracy(&f, &full.predict(&c).articles);
    let acc_sampled = article_train_accuracy(&f, &trained.predict(&c).articles);
    assert!(
        (acc_full - acc_sampled).abs() <= 0.01,
        "sampled accuracy {acc_sampled} strayed from full-graph {acc_full}"
    );
}

/// The sampled epoch is a pure function of (config, seed, epoch): the
/// sampler, the batch shuffle and the sparse optimizer are all
/// deterministic, so `FD_THREADS` must change wall-clock only.
#[test]
fn sampled_training_is_bitwise_invariant_under_thread_count() {
    let f = fixture();
    let c = ctx(&f);
    let config = FakeDetectorConfig {
        epochs: 3,
        train_mode: sampled(12, 4, 2),
        ..FakeDetectorConfig::default()
    };
    let run = |threads| {
        with_thread_count(threads, || FakeDetector::new(config.clone()).fit(&c))
    };
    let one = run(1);
    let eight = run(8);
    let (r1, r8) = (one.report(), eight.report());
    assert_eq!(r1.losses.len(), r8.losses.len());
    for (a, b) in r1.losses.iter().zip(&r8.losses) {
        assert_eq!(a.to_bits(), b.to_bits(), "loss history diverged: {a} vs {b}");
    }
    assert_eq!(one.params_json(), eight.params_json(), "weights diverged");
    assert_eq!(one.predict(&c), eight.predict(&c));
}

/// Fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fd-core-sampled-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Checkpoint/resume must stay bitwise in sampled mode: the per-epoch
/// batch schedule and sample salts are keyed on the epoch number alone,
/// so a resumed run replays the exact remaining minibatches.
#[test]
fn sampled_resume_reproduces_uninterrupted_run_bitwise() {
    let f = fixture();
    let c = ctx(&f);
    let config = FakeDetectorConfig {
        epochs: 6,
        train_mode: sampled(16, 4, 2),
        ..FakeDetectorConfig::default()
    };

    let control_dir = scratch("control");
    let control = FakeDetector::new(config.clone())
        .fit_with(&c, &FitOptions::checkpointed(&control_dir, 1))
        .unwrap();

    let resumed_dir = scratch("resumed");
    FakeDetector::new(FakeDetectorConfig { epochs: 3, ..config.clone() })
        .fit_with(&c, &FitOptions::checkpointed(&resumed_dir, 1))
        .unwrap();
    let resumed = FakeDetector::new(config)
        .fit_with(&c, &FitOptions::checkpointed(&resumed_dir, 1).resuming())
        .unwrap();

    assert_eq!(
        control.params_json(),
        resumed.params_json(),
        "resumed weights must be bit-identical to the uninterrupted run"
    );
    let (cr, rr) = (control.report(), resumed.report());
    assert_eq!(cr.losses.len(), rr.losses.len());
    for (a, b) in cr.losses.iter().zip(&rr.losses) {
        assert_eq!(a.to_bits(), b.to_bits(), "loss history diverged");
    }
    let _ = std::fs::remove_dir_all(&control_dir);
    let _ = std::fs::remove_dir_all(&resumed_dir);
}

/// Full-graph and sampled checkpoints must never cross-resume: the
/// train mode is part of the config fingerprint.
#[test]
fn sampled_checkpoint_is_incompatible_with_full_graph_resume() {
    let f = fixture();
    let c = ctx(&f);
    let dir = scratch("mode-mismatch");
    FakeDetector::new(FakeDetectorConfig {
        epochs: 2,
        train_mode: sampled(16, 4, 2),
        ..FakeDetectorConfig::default()
    })
    .fit_with(&c, &FitOptions::checkpointed(&dir, 1))
    .unwrap();
    let result = FakeDetector::new(FakeDetectorConfig {
        epochs: 4,
        ..FakeDetectorConfig::default()
    })
    .fit_with(&c, &FitOptions::checkpointed(&dir, 1).resuming());
    match result {
        Ok(_) => panic!("full-graph resume from a sampled checkpoint must fail"),
        Err(err) => assert!(err.contains("configuration"), "unexpected error: {err}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Tests for the trained-model surface: persistence round-trips,
//! probability outputs and inductive new-article scoring.

use fd_core::{FakeDetector, FakeDetectorConfig, TrainedFakeDetector};
use fd_data::{
    CredibilityModel,
    generate, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
    TokenizedCorpus, TrainSets,
};
use fd_graph::NodeType;
use rand::{rngs::StdRng, SeedableRng};

struct Fixture {
    corpus: fd_data::Corpus,
    tokenized: TokenizedCorpus,
    explicit: ExplicitFeatures,
    train: TrainSets,
}

fn fixture() -> Fixture {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.012), 55);
    let tokenized = TokenizedCorpus::build(&corpus, 10, 4000);
    let mut rng = StdRng::seed_from_u64(2);
    let train = TrainSets {
        articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
        creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
        subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
    };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
    Fixture { corpus, tokenized, explicit, train }
}

fn ctx(f: &Fixture) -> ExperimentContext<'_> {
    ExperimentContext {
        corpus: &f.corpus,
        tokenized: &f.tokenized,
        explicit: &f.explicit,
        train: &f.train,
        mode: LabelMode::Binary,
        seed: 9,
    }
}

fn quick_fit(f: &Fixture) -> TrainedFakeDetector {
    let c = ctx(f);
    FakeDetector::new(FakeDetectorConfig { epochs: 8, ..Default::default() }).fit(&c)
}

#[test]
fn fit_then_predict_matches_fit_predict() {
    let f = fixture();
    let c = ctx(&f);
    let model = FakeDetector::new(FakeDetectorConfig { epochs: 5, ..Default::default() });
    let direct = model.fit_predict(&c);
    let staged = model.fit(&c).predict(&c);
    assert_eq!(direct, staged);
}

#[test]
fn probabilities_are_distributions_consistent_with_argmax() {
    let f = fixture();
    let c = ctx(&f);
    let trained = quick_fit(&f);
    let preds = trained.predict(&c);
    let probas = trained.predict_proba(&c);
    for (slot, ty) in NodeType::ALL.iter().enumerate() {
        for (idx, p) in probas[slot].iter().enumerate() {
            assert_eq!(p.len(), 2);
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "probabilities sum to {sum}");
            let argmax = if p[1] > p[0] { 1 } else { 0 };
            assert_eq!(argmax, preds.for_type(*ty)[idx], "{ty:?} {idx}");
        }
    }
}

#[test]
fn json_roundtrip_preserves_predictions() {
    let f = fixture();
    let c = ctx(&f);
    let trained = quick_fit(&f);
    let json = trained.to_json();
    let restored = TrainedFakeDetector::from_json(&json).expect("roundtrip");
    assert_eq!(trained.predict(&c), restored.predict(&c));
    assert_eq!(trained.report().losses, restored.report().losses);
}

#[test]
fn from_json_rejects_garbage() {
    assert!(TrainedFakeDetector::from_json("{}").is_err());
    assert!(TrainedFakeDetector::from_json("not json").is_err());
}

#[test]
fn inductive_scoring_returns_distribution_and_reacts_to_text() {
    let f = fixture();
    let c = ctx(&f);
    let trained = quick_fit(&f);
    // Score a fabricated "new" statement with an existing creator/subject.
    let credible_text = "federal budget report shows unemployment rate decline percent census data";
    let fake_text = "obamacare hoax conspiracy rigged fraud banned secret takeover lies";
    let p_credible = trained.score_new_article(&c, credible_text, Some(0), &[0, 1]);
    let p_fake = trained.score_new_article(&c, fake_text, Some(0), &[0, 1]);
    for p in [&p_credible, &p_fake] {
        assert_eq!(p.len(), 2);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }
    assert!(
        p_credible[1] > p_fake[1],
        "credible-sounding text ({:.3}) should outscore fake-sounding text ({:.3})",
        p_credible[1],
        p_fake[1]
    );
}

#[test]
fn inductive_scoring_without_neighbours_still_works() {
    let f = fixture();
    let c = ctx(&f);
    let trained = quick_fit(&f);
    let p = trained.score_new_article(&c, "economy jobs growth data", None, &[]);
    assert_eq!(p.len(), 2);
    assert!(p.iter().all(|v| v.is_finite()));
}

#[test]
#[should_panic(expected = "label mode changed")]
fn predict_rejects_mismatched_mode() {
    let f = fixture();
    let trained = quick_fit(&f);
    let multi = ExperimentContext {
        corpus: &f.corpus,
        tokenized: &f.tokenized,
        explicit: &f.explicit,
        train: &f.train,
        mode: LabelMode::MultiClass,
        seed: 9,
    };
    let _ = trained.predict(&multi);
}

#[test]
#[should_panic(expected = "creator 9999 out of range")]
fn inductive_scoring_checks_creator_bounds() {
    let f = fixture();
    let c = ctx(&f);
    let trained = quick_fit(&f);
    let _ = trained.score_new_article(&c, "text", Some(9999), &[]);
}

//! Skip-gram-with-negative-sampling (SGNS) machinery shared by DeepWalk
//! and LINE. Updates are hand-rolled (no autograd tape): embedding
//! training is a tight loop over millions of (center, context) pairs and
//! the gradient of `log σ(u·v) + Σ log σ(-u·n)` is two axpys per node.

use fd_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Paired input/output embedding tables for SGNS training.
#[derive(Debug, Clone)]
pub(crate) struct Sgns {
    input: Vec<f32>,
    output: Vec<f32>,
    n: usize,
    dim: usize,
}

/// Numerically safe sigmoid for the update rule.
#[inline]
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Sgns {
    /// Tables for `n` nodes of width `dim`; inputs start uniform small,
    /// outputs at zero (the word2vec convention).
    pub fn new(n: usize, dim: usize, rng: &mut StdRng) -> Self {
        assert!(n > 0 && dim > 0, "Sgns::new: empty table");
        let scale = 0.5 / dim as f32;
        let input = (0..n * dim).map(|_| rng.gen_range(-scale..scale)).collect();
        let output = vec![0.0; n * dim];
        Self { input, output, n, dim }
    }

    /// Number of nodes.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Embedding width.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One SGNS step: positive pair `(center, context)` plus `negatives`
    /// drawn elsewhere. `symmetric = true` reads the context/negative
    /// vectors from the *input* table (LINE's first-order objective);
    /// `false` uses the separate output table (skip-gram / second-order).
    pub fn step(
        &mut self,
        center: usize,
        context: usize,
        negatives: &[usize],
        lr: f32,
        symmetric: bool,
    ) {
        debug_assert!(center < self.n && context < self.n);
        let d = self.dim;
        let mut grad_center = vec![0.0f32; d];
        let mut targets = Vec::with_capacity(1 + negatives.len());
        targets.push((context, 1.0f32));
        targets.extend(negatives.iter().map(|&v| (v, 0.0f32)));

        for (other, label) in targets {
            if other == center && symmetric {
                continue; // self-pairs carry no information
            }
            let (c_row, o_row) = {
                let c = &self.input[center * d..(center + 1) * d];
                let o = if symmetric {
                    &self.input[other * d..(other + 1) * d]
                } else {
                    &self.output[other * d..(other + 1) * d]
                };
                let dot: f32 = c.iter().zip(o).map(|(&a, &b)| a * b).sum();
                let g = sigmoid(dot) - label; // d(-loglik)/d(dot)
                (
                    o.iter().map(|&v| g * v).collect::<Vec<f32>>(),
                    c.iter().map(|&v| g * v).collect::<Vec<f32>>(),
                )
            };
            for (acc, v) in grad_center.iter_mut().zip(&c_row) {
                *acc += v;
            }
            let table = if symmetric { &mut self.input } else { &mut self.output };
            for (slot, v) in table[other * d..(other + 1) * d].iter_mut().zip(&o_row) {
                *slot -= lr * v;
            }
        }
        for (slot, v) in self.input[center * d..(center + 1) * d].iter_mut().zip(&grad_center) {
            *slot -= lr * v;
        }
    }

    /// Negative log-likelihood of one labelled pair — used by tests to
    /// verify training decreases the objective.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn pair_loss(&self, center: usize, other: usize, label: f32, symmetric: bool) -> f32 {
        let d = self.dim;
        let c = &self.input[center * d..(center + 1) * d];
        let o = if symmetric {
            &self.input[other * d..(other + 1) * d]
        } else {
            &self.output[other * d..(other + 1) * d]
        };
        let dot: f32 = c.iter().zip(o).map(|(&a, &b)| a * b).sum();
        let p = sigmoid(dot).clamp(1e-7, 1.0 - 1e-7);
        if label > 0.5 {
            -p.ln()
        } else {
            -(1.0 - p).ln()
        }
    }

    /// The learned input embedding of node `i` as a `1 x dim` row.
    pub fn embedding(&self, i: usize) -> Matrix {
        Matrix::row_vector(&self.input[i * self.dim..(i + 1) * self.dim])
    }

    /// L2-normalised embedding (what the downstream SVM consumes).
    pub fn embedding_normalised(&self, i: usize) -> Matrix {
        let mut e = self.embedding(i);
        let norm = e.frobenius_norm();
        if norm > 0.0 {
            e.map_in_place(|v| v / norm);
        }
        e
    }
}

/// Unigram^0.75 negative-sampling distribution over node frequencies, as
/// in word2vec/LINE.
pub(crate) fn negative_table(frequencies: &[f64]) -> fd_graph::AliasTable {
    let weights: Vec<f64> = frequencies.iter().map(|&f| (f + 1.0).powf(0.75)).collect();
    fd_graph::AliasTable::new(&weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn step_reduces_positive_pair_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sgns = Sgns::new(10, 8, &mut rng);
        let before = sgns.pair_loss(0, 1, 1.0, false);
        for _ in 0..50 {
            sgns.step(0, 1, &[5, 7], 0.1, false);
        }
        let after = sgns.pair_loss(0, 1, 1.0, false);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn step_pushes_negatives_apart() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sgns = Sgns::new(6, 4, &mut rng);
        for _ in 0..80 {
            sgns.step(0, 1, &[2], 0.2, false);
        }
        let pos = sgns.pair_loss(0, 1, 1.0, false);
        let neg = sgns.pair_loss(0, 2, 1.0, false);
        assert!(pos < neg, "positive pair should score higher than negative");
    }

    #[test]
    fn symmetric_mode_trains_input_table_only() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sgns = Sgns::new(6, 4, &mut rng);
        let before = sgns.pair_loss(0, 1, 1.0, true);
        for _ in 0..60 {
            sgns.step(0, 1, &[3, 4], 0.15, true);
        }
        let after = sgns.pair_loss(0, 1, 1.0, true);
        assert!(after < before);
        // Output table untouched in symmetric mode.
        assert!(sgns.output.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn symmetric_self_pair_is_skipped() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sgns = Sgns::new(3, 4, &mut rng);
        let before = sgns.embedding(0);
        sgns.step(0, 0, &[], 0.5, true);
        assert_eq!(sgns.embedding(0), before);
    }

    #[test]
    fn normalised_embeddings_are_unit() {
        let mut rng = StdRng::seed_from_u64(5);
        let sgns = Sgns::new(4, 6, &mut rng);
        let n = sgns.embedding_normalised(2).frobenius_norm();
        assert!((n - 1.0).abs() < 1e-5);
        assert_eq!(sgns.dim(), 6);
        assert_eq!(sgns.len(), 4);
    }

    #[test]
    fn negative_table_prefers_frequent_nodes() {
        let table = negative_table(&[100.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1] * 3);
        assert!(counts[1] > 0, "smoothing must keep rare nodes reachable");
    }
}

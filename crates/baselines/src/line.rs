//! LINE (Tang et al., WWW 2015): large-scale information network
//! embedding preserving first- and second-order proximity, trained by
//! edge sampling with negative sampling. As in the paper, the two halves
//! are trained separately and concatenated before the downstream SVM.

use crate::deepwalk::classify_embeddings;
use crate::embeddings::{negative_table, Sgns};
use crate::svm::SvmConfig;
use crate::{CredibilityModel, ExperimentContext, Predictions};
use fd_graph::AliasTable;
use fd_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// LINE hyper-parameters.
#[derive(Debug, Clone)]
pub struct LineConfig {
    /// Width of *each* half (final embedding is `2 * dim`).
    pub dim: usize,
    /// Edge samples, expressed as multiples of the edge count.
    pub samples_per_edge: usize,
    /// Negative samples per positive edge.
    pub negatives: usize,
    /// Initial learning rate (linear decay to 1e-4).
    pub lr: f32,
    /// Downstream SVM settings.
    pub svm: SvmConfig,
}

impl Default for LineConfig {
    fn default() -> Self {
        Self { dim: 16, samples_per_edge: 24, negatives: 4, lr: 0.06, svm: SvmConfig::default() }
    }
}

/// The LINE baseline.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Hyper-parameters.
    pub config: LineConfig,
}

impl Line {
    /// Learns the concatenated first‖second order embedding per node.
    pub fn embed(&self, ctx: &ExperimentContext<'_>) -> Vec<Matrix> {
        let graph = &ctx.corpus.graph;
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x11e0_55aa);
        let edges = graph.edges_global();
        assert!(!edges.is_empty(), "Line::embed: graph has no edges");
        let edge_sampler = AliasTable::new(&vec![1.0; edges.len()]);

        // Degree-based negative distribution.
        let mut degree = vec![0.0f64; graph.n_nodes()];
        for &(a, b) in &edges {
            degree[a] += 1.0;
            degree[b] += 1.0;
        }
        let negatives = negative_table(&degree);

        let total = edges.len() * self.config.samples_per_edge;
        let mut first = Sgns::new(graph.n_nodes(), self.config.dim, &mut rng);
        let mut second = Sgns::new(graph.n_nodes(), self.config.dim, &mut rng);
        for step in 0..total {
            let lr = (self.config.lr * (1.0 - step as f32 / total as f32)).max(1e-4);
            let (mut u, mut v) = edges[edge_sampler.sample(&mut rng)];
            // Undirected edge: orient at random each draw.
            if rng.gen_bool(0.5) {
                std::mem::swap(&mut u, &mut v);
            }
            let negs: Vec<usize> = (0..self.config.negatives)
                .map(|_| negatives.sample(&mut rng))
                .collect();
            // First order: symmetric objective over the input table.
            first.step(u, v, &negs, lr, true);
            // Second order: skip-gram-style with a context table.
            second.step(u, v, &negs, lr, false);
        }
        (0..graph.n_nodes())
            .map(|i| {
                first
                    .embedding_normalised(i)
                    .concat_cols(&second.embedding_normalised(i))
            })
            .collect()
    }
}

impl CredibilityModel for Line {
    fn name(&self) -> &'static str {
        "line"
    }

    fn fit_predict(&self, ctx: &ExperimentContext<'_>) -> Predictions {
        let embeddings = self.embed(ctx);
        classify_embeddings(ctx, &embeddings, &self.config.svm, ctx.seed ^ 0x11e1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_data::{
        generate, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
        TokenizedCorpus, TrainSets,
    };
    use fd_graph::{NodeRef, NodeType};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn line_embeddings_have_double_width_and_capture_adjacency() {
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.012), 37);
        let tokenized = TokenizedCorpus::build(&corpus, 10, 3000);
        let mut rng = StdRng::seed_from_u64(2);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
        };
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
        let ctx = ExperimentContext {
            corpus: &corpus,
            tokenized: &tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed: 5,
        };
        let model = Line::default();
        let embeddings = model.embed(&ctx);
        assert_eq!(embeddings.len(), corpus.graph.n_nodes());
        assert_eq!(embeddings[0].cols(), 2 * model.config.dim);

        // First-order proximity: an article should be closer to its own
        // creator than to a structurally distant one, on average.
        let (mut own, mut other, mut n) = (0.0f32, 0.0f32, 0);
        for a in 0..corpus.articles.len().min(120) {
            let creator = corpus.graph.author_of(a).unwrap();
            let far = (creator + corpus.creators.len() / 2) % corpus.creators.len();
            if far == creator {
                continue;
            }
            let ga = corpus.graph.global_id(NodeRef { ty: NodeType::Article, idx: a });
            let gc = corpus.graph.global_id(NodeRef { ty: NodeType::Creator, idx: creator });
            let gf = corpus.graph.global_id(NodeRef { ty: NodeType::Creator, idx: far });
            own += embeddings[ga].dot(&embeddings[gc]);
            other += embeddings[ga].dot(&embeddings[gf]);
            n += 1;
        }
        assert!(
            own / n as f32 > other / n as f32,
            "adjacent similarity {} not above distant {}",
            own / n as f32,
            other / n as f32
        );
    }
}

//! The RNN baseline \[42\]: latent GRU features only, no explicit features
//! and no graph. A single shared GRU encoder reads every entity's token
//! sequence; per-type soft-max heads produce the credibility predictions
//! ("the latent feature vectors will be fused to predict the news
//! article, creator and subject credibility labels").

use crate::{CredibilityModel, ExperimentContext, Predictions};
use fd_autograd::Tape;
use fd_graph::NodeType;
use fd_nn::{clip_global_norm, Adam, Binding, GruEncoder, Linear, Optimizer, Params};
use fd_text::PAD_ID;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// RNN baseline hyper-parameters.
#[derive(Debug, Clone)]
pub struct RnnConfig {
    /// Token embedding width.
    pub embed_dim: usize,
    /// GRU hidden width.
    pub hidden_dim: usize,
    /// Encoder output (latent feature) width.
    pub latent_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Entities per tape (bounds peak memory).
    pub batch_size: usize,
    /// Global-norm gradient clip.
    pub clip: f32,
}

impl Default for RnnConfig {
    fn default() -> Self {
        Self {
            embed_dim: 16,
            hidden_dim: 24,
            latent_dim: 24,
            epochs: 20,
            lr: 1e-2,
            batch_size: 16,
            clip: 5.0,
        }
    }
}

/// The RNN baseline model.
#[derive(Debug, Clone, Default)]
pub struct RnnBaseline {
    /// Hyper-parameters.
    pub config: RnnConfig,
}

fn head_slot(ty: NodeType) -> usize {
    match ty {
        NodeType::Article => 0,
        NodeType::Creator => 1,
        NodeType::Subject => 2,
    }
}

impl CredibilityModel for RnnBaseline {
    fn name(&self) -> &'static str {
        "rnn"
    }

    fn fit_predict(&self, ctx: &ExperimentContext<'_>) -> Predictions {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x4242_1111);
        let mut params = Params::new();
        let encoder = GruEncoder::new(
            &mut params,
            "rnn.encoder",
            ctx.tokenized.vocab.id_space(),
            cfg.embed_dim,
            cfg.hidden_dim,
            cfg.latent_dim,
            PAD_ID,
            &mut rng,
        );
        let heads: [Linear; 3] = [
            Linear::new(&mut params, "rnn.head.article", cfg.latent_dim, ctx.n_classes(), &mut rng),
            Linear::new(&mut params, "rnn.head.creator", cfg.latent_dim, ctx.n_classes(), &mut rng),
            Linear::new(&mut params, "rnn.head.subject", cfg.latent_dim, ctx.n_classes(), &mut rng),
        ];
        let mut optimizer = Adam::new(cfg.lr);

        let mut items = ctx.train_items();
        for _epoch in 0..cfg.epochs {
            items.shuffle(&mut rng);
            for batch in items.chunks(cfg.batch_size) {
                let tape = Tape::with_capacity(batch.len() * 256);
                let binding = Binding::new(&tape, &params);
                let losses: Vec<_> = batch
                    .iter()
                    .map(|&(ty, idx, target)| {
                        let latent = encoder.encode(&binding, ctx.tokenized.sequence(ty, idx));
                        let logits = heads[head_slot(ty)].forward(&binding, latent);
                        tape.softmax_cross_entropy(logits, target)
                    })
                    .collect();
                let loss = tape.sum_n(&losses);
                tape.backward(loss);
                let mut grads = binding.grads();
                clip_global_norm(&mut grads, cfg.clip);
                optimizer.apply(&mut params, &grads);
            }
        }

        // Inference over every entity, batched to bound tape size.
        let mut predictions = Predictions::zeroed(ctx);
        for ty in NodeType::ALL {
            let n = ctx.count(ty);
            let out = predictions.for_type_mut(ty);
            for chunk_start in (0..n).step_by(cfg.batch_size) {
                let chunk_end = (chunk_start + cfg.batch_size).min(n);
                let tape = Tape::with_capacity((chunk_end - chunk_start) * 256);
                let binding = Binding::new(&tape, &params);
                for (idx, slot) in out.iter_mut().enumerate().take(chunk_end).skip(chunk_start) {
                    let latent = encoder.encode(&binding, ctx.tokenized.sequence(ty, idx));
                    let logits = heads[head_slot(ty)].forward(&binding, latent);
                    *slot = tape.with_value(logits, |m| m.row_argmax(0).index);
                }
            }
        }
        predictions
    }
}

//! The five comparison methods of Section 5.1.2:
//!
//! | Method | Signal used | Module |
//! |---|---|---|
//! | `Svm` | explicit BoW features only | [`svm`] |
//! | `Rnn` | latent GRU features only | [`rnn`] |
//! | `DeepWalk` | graph structure (walks + skip-gram) | [`deepwalk`] |
//! | `Line` | graph structure (1st/2nd-order proximity) | [`mod@line`] |
//! | `Propagation` | graph structure (label propagation) | [`propagation`] |
//!
//! All methods implement [`CredibilityModel`]: one `fit_predict` call
//! trains on the [`TrainSets`](fd_data::TrainSets) and returns predicted class indices for
//! *every* entity; the experiment runner scores the test subsets.

mod embeddings;
pub mod deepwalk;
pub mod line;
pub mod propagation;
pub mod rnn;
pub mod svm;

pub use fd_data::{CredibilityModel, ExperimentContext, Predictions};
pub use deepwalk::DeepWalk;
pub use line::Line;
pub use propagation::Propagation;
pub use rnn::RnnBaseline;
pub use svm::SvmBaseline;

/// Constructs the paper's five baselines with their default
/// hyper-parameters, in presentation order.
pub fn default_baselines() -> Vec<Box<dyn CredibilityModel>> {
    vec![
        Box::new(Propagation::default()),
        Box::new(DeepWalk::default()),
        Box::new(Line::default()),
        Box::new(SvmBaseline::default()),
        Box::new(RnnBaseline::default()),
    ]
}

//! Linear multi-class SVM — the paper's explicit-feature baseline \[8\],
//! and the downstream classifier for the DeepWalk/LINE embeddings.
//!
//! One-vs-rest linear SVMs trained by SGD on the L2-regularised hinge
//! loss (Pegasos-style, but with a fixed small learning rate which is
//! better behaved on the tiny per-fold datasets of the θ sweep).

use crate::{CredibilityModel, ExperimentContext, Predictions};
use fd_tensor::{argmax_slice, Matrix};
use fd_graph::NodeType;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters of the linear SVM trainer.
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// Full passes over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// L2 regularisation strength.
    pub reg: f32,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { epochs: 30, lr: 0.05, reg: 1e-4 }
    }
}

/// A trained one-vs-rest linear model: one `(w, b)` per class.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// `k x d` weight rows.
    weights: Matrix,
    /// `1 x k` biases.
    bias: Matrix,
}

impl LinearSvm {
    /// Trains on `1 x d` feature rows with class targets in `0..k`.
    ///
    /// # Panics
    /// Panics on empty input, mismatched lengths, or a target `>= k`.
    pub fn train(
        features: &[&Matrix],
        targets: &[usize],
        k: usize,
        config: &SvmConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert!(!features.is_empty(), "LinearSvm::train: no training data");
        assert_eq!(features.len(), targets.len(), "LinearSvm::train: length mismatch");
        assert!(targets.iter().all(|&t| t < k), "LinearSvm::train: target out of range");
        let d = features[0].cols();
        let mut weights = Matrix::zeros(k, d);
        let mut bias = Matrix::zeros(1, k);
        // Polyak-style tail averaging: the last-iterate SGD solution
        // wobbles with the shuffle order on small datasets, so the
        // returned model is the average over the final half of the
        // epochs, which is much less sensitive to the draw.
        let mut avg_weights = Matrix::zeros(k, d);
        let mut avg_bias = Matrix::zeros(1, k);
        let mut averaged = 0usize;
        let tail_from = config.epochs / 2;
        let mut order: Vec<usize> = (0..features.len()).collect();
        for epoch in 0..config.epochs {
            order.shuffle(rng);
            for &i in &order {
                let x = features[i];
                debug_assert_eq!(x.cols(), d);
                for c in 0..k {
                    let y = if targets[i] == c { 1.0f32 } else { -1.0 };
                    let margin = {
                        let w = weights.row(c);
                        let score: f32 =
                            w.iter().zip(x.row(0)).map(|(&wv, &xv)| wv * xv).sum::<f32>()
                                + bias[(0, c)];
                        y * score
                    };
                    // L2 shrinkage applies on every step; the hinge part
                    // only when the margin is violated.
                    let w = weights.row_mut(c);
                    for wv in w.iter_mut() {
                        *wv -= config.lr * config.reg * *wv;
                    }
                    if margin < 1.0 {
                        for (wv, &xv) in w.iter_mut().zip(x.row(0)) {
                            *wv += config.lr * y * xv;
                        }
                        bias[(0, c)] += config.lr * y;
                    }
                }
            }
            if epoch >= tail_from {
                avg_weights.add_assign(&weights);
                avg_bias.add_assign(&bias);
                averaged += 1;
            }
        }
        if averaged > 0 {
            let inv = 1.0 / averaged as f32;
            Self { weights: avg_weights.scale(inv), bias: avg_bias.scale(inv) }
        } else {
            Self { weights, bias }
        }
    }

    /// Raw per-class scores for one feature row.
    pub fn scores(&self, x: &Matrix) -> Vec<f32> {
        (0..self.weights.rows())
            .map(|c| {
                self.weights
                    .row(c)
                    .iter()
                    .zip(x.row(0))
                    .map(|(&w, &xv)| w * xv)
                    .sum::<f32>()
                    + self.bias[(0, c)]
            })
            .collect()
    }

    /// Predicted class of one feature row (highest OvR score).
    pub fn predict(&self, x: &Matrix) -> usize {
        argmax_slice(&self.scores(x)).index
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.weights.rows()
    }
}

/// The SVM baseline: per-entity-type OvR SVMs over the explicit
/// (χ²-selected bag-of-words) features.
#[derive(Debug, Clone, Default)]
pub struct SvmBaseline {
    /// Trainer settings shared by the three per-type models.
    pub config: SvmConfig,
}

impl CredibilityModel for SvmBaseline {
    fn name(&self) -> &'static str {
        "svm"
    }

    fn fit_predict(&self, ctx: &ExperimentContext<'_>) -> Predictions {
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x5f3759df);
        let mut predictions = Predictions::zeroed(ctx);
        for ty in NodeType::ALL {
            let train_ids = ctx.train.for_type(ty);
            if train_ids.is_empty() {
                continue;
            }
            let features: Vec<&Matrix> =
                train_ids.iter().map(|&i| ctx.explicit.feature(ty, i)).collect();
            let targets: Vec<usize> = train_ids.iter().map(|&i| ctx.target(ty, i)).collect();
            let model = LinearSvm::train(&features, &targets, ctx.n_classes(), &self.config, &mut rng);
            let out = predictions.for_type_mut(ty);
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = model.predict(ctx.explicit.feature(ty, i));
            }
        }
        predictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn separable_binary_problem() {
        // Class 1 lives at x > 0, class 0 at x < 0.
        let pos: Vec<Matrix> = (0..20).map(|i| Matrix::row_vector(&[1.0 + i as f32 * 0.1, 0.5])).collect();
        let neg: Vec<Matrix> = (0..20).map(|i| Matrix::row_vector(&[-1.0 - i as f32 * 0.1, 0.5])).collect();
        let features: Vec<&Matrix> = pos.iter().chain(&neg).collect();
        let targets: Vec<usize> = std::iter::repeat_n(1, 20).chain(std::iter::repeat_n(0, 20)).collect();
        let model = LinearSvm::train(&features, &targets, 2, &SvmConfig::default(), &mut rng());
        for f in &pos {
            assert_eq!(model.predict(f), 1);
        }
        for f in &neg {
            assert_eq!(model.predict(f), 0);
        }
    }

    #[test]
    fn three_class_one_hot_problem() {
        // Each class has its own active coordinate.
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for c in 0..3usize {
            for _ in 0..15 {
                let mut v = [0.1f32; 3];
                v[c] = 1.0;
                features.push(Matrix::row_vector(&v));
                targets.push(c);
            }
        }
        let refs: Vec<&Matrix> = features.iter().collect();
        let model = LinearSvm::train(&refs, &targets, 3, &SvmConfig::default(), &mut rng());
        let correct = refs
            .iter()
            .zip(&targets)
            .filter(|(f, &t)| model.predict(f) == t)
            .count();
        assert!(correct >= 43, "only {correct}/45 correct");
        assert_eq!(model.n_classes(), 3);
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let f1 = Matrix::row_vector(&[1.0, -1.0]);
        let f2 = Matrix::row_vector(&[-1.0, 1.0]);
        let features = vec![&f1, &f2];
        let targets = vec![1, 0];
        let a = LinearSvm::train(&features, &targets, 2, &SvmConfig::default(), &mut rng());
        let b = LinearSvm::train(&features, &targets, 2, &SvmConfig::default(), &mut rng());
        assert_eq!(a.scores(&f1), b.scores(&f1));
    }

    #[test]
    fn scores_have_one_entry_per_class() {
        let f = Matrix::row_vector(&[0.3, 0.4]);
        let features = vec![&f];
        let model = LinearSvm::train(&features, &[3], 6, &SvmConfig::default(), &mut rng());
        assert_eq!(model.scores(&f).len(), 6);
    }

    #[test]
    #[should_panic(expected = "no training data")]
    fn empty_train_rejected() {
        let _ = LinearSvm::train(&[], &[], 2, &SvmConfig::default(), &mut rng());
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn bad_target_rejected() {
        let f = Matrix::row_vector(&[1.0]);
        let _ = LinearSvm::train(&[&f], &[2], 2, &SvmConfig::default(), &mut rng());
    }
}

//! Heterogeneous label propagation — the paper's structure-only baseline
//! \[29\]. Credibility scores (normalised to \[0, 1\]) diffuse along
//! authorship and topic links with link-type-specific mixing weights;
//! training nodes are clamped to their ground truth every sweep and final
//! scores are rounded back to labels.

use crate::{CredibilityModel, ExperimentContext, Predictions};
use fd_data::Credibility;
use fd_graph::NodeType;

/// Label-propagation hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct PropagationConfig {
    /// Propagation sweeps.
    pub iterations: usize,
    /// Retention weight on a node's own previous score.
    pub self_weight: f64,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        Self { iterations: 60, self_weight: 0.3 }
    }
}

/// The label-propagation model.
#[derive(Debug, Clone, Default)]
pub struct Propagation {
    /// Sweep settings.
    pub config: PropagationConfig,
}

/// Maps a credibility label to the unit interval (True = 1, PoF = 0).
fn label_to_unit(label: Credibility) -> f64 {
    (label.score() as f64 - 1.0) / 5.0
}

impl Propagation {
    /// Runs the propagation and returns the converged per-type scores in
    /// [0, 1] (exposed for tests and the ablation harness).
    pub fn propagate(&self, ctx: &ExperimentContext<'_>) -> [Vec<f64>; 3] {
        let graph = &ctx.corpus.graph;
        let neutral = 0.5f64;
        let mut scores = [
            vec![neutral; graph.n_articles()],
            vec![neutral; graph.n_creators()],
            vec![neutral; graph.n_subjects()],
        ];
        // Clamp masks: training nodes hold their ground-truth score.
        let clamp: Vec<(usize, usize, f64)> = {
            let mut c = Vec::with_capacity(ctx.train.len());
            for (slot, ty) in NodeType::ALL.iter().enumerate() {
                for &idx in ctx.train.for_type(*ty) {
                    let label = match ty {
                        NodeType::Article => ctx.corpus.articles[idx].label,
                        NodeType::Creator => ctx.corpus.creators[idx].label,
                        NodeType::Subject => ctx.corpus.subjects[idx].label,
                    };
                    c.push((slot, idx, label_to_unit(label)));
                }
            }
            c
        };
        let apply_clamp = |scores: &mut [Vec<f64>; 3]| {
            for &(slot, idx, value) in &clamp {
                scores[slot][idx] = value;
            }
        };
        apply_clamp(&mut scores);

        let sw = self.config.self_weight;
        for _ in 0..self.config.iterations {
            let mut next = scores.clone();
            // Articles mix their creator and mean subject scores.
            for a in 0..graph.n_articles() {
                let mut incoming = Vec::with_capacity(2);
                if let Some(u) = graph.author_of(a) {
                    incoming.push(scores[1][u]);
                }
                let subjects = graph.subjects_of_article(a);
                if !subjects.is_empty() {
                    let mean: f64 = subjects.iter().map(|&s| scores[2][s]).sum::<f64>()
                        / subjects.len() as f64;
                    incoming.push(mean);
                }
                if !incoming.is_empty() {
                    let neighbour = incoming.iter().sum::<f64>() / incoming.len() as f64;
                    next[0][a] = sw * scores[0][a] + (1.0 - sw) * neighbour;
                }
            }
            // Creators and subjects mix the mean of their articles.
            for u in 0..graph.n_creators() {
                let articles = graph.articles_of_creator(u);
                if !articles.is_empty() {
                    let mean: f64 = articles.iter().map(|&a| scores[0][a]).sum::<f64>()
                        / articles.len() as f64;
                    next[1][u] = sw * scores[1][u] + (1.0 - sw) * mean;
                }
            }
            for s in 0..graph.n_subjects() {
                let articles = graph.articles_of_subject(s);
                if !articles.is_empty() {
                    let mean: f64 = articles.iter().map(|&a| scores[0][a]).sum::<f64>()
                        / articles.len() as f64;
                    next[2][s] = sw * scores[2][s] + (1.0 - sw) * mean;
                }
            }
            scores = next;
            apply_clamp(&mut scores);
        }
        scores
    }
}

impl CredibilityModel for Propagation {
    fn name(&self) -> &'static str {
        "lp"
    }

    fn fit_predict(&self, ctx: &ExperimentContext<'_>) -> Predictions {
        let scores = self.propagate(ctx);
        let mut predictions = Predictions::zeroed(ctx);
        for (slot, ty) in NodeType::ALL.iter().enumerate() {
            let out = predictions.for_type_mut(*ty);
            for (idx, slot_score) in scores[slot].iter().enumerate() {
                // Round the unit score back onto the label scale, then
                // map through the run's label mode — "the prediction
                // score will be rounded and cast into labels".
                let label = Credibility::from_score_rounded(1.0 + 5.0 * slot_score);
                out[idx] = ctx.mode.target(label);
            }
        }
        predictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_data::{
        generate, CvSplits, ExplicitFeatures, GeneratorConfig, LabelMode, TokenizedCorpus,
        TrainSets,
    };
    use rand::{rngs::StdRng, SeedableRng};

    struct Fixture {
        corpus: fd_data::Corpus,
        tokenized: TokenizedCorpus,
        explicit: ExplicitFeatures,
        train: TrainSets,
    }

    fn fixture(seed: u64) -> Fixture {
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.02), seed);
        let tokenized = TokenizedCorpus::build(&corpus, 12, 4000);
        let mut rng = StdRng::seed_from_u64(seed);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
        };
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 60);
        Fixture { corpus, tokenized, explicit, train }
    }

    fn ctx(f: &Fixture, mode: LabelMode) -> ExperimentContext<'_> {
        ExperimentContext {
            corpus: &f.corpus,
            tokenized: &f.tokenized,
            explicit: &f.explicit,
            train: &f.train,
            mode,
            seed: 7,
        }
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let f = fixture(3);
        let c = ctx(&f, LabelMode::Binary);
        let scores = Propagation::default().propagate(&c);
        for slot in &scores {
            assert!(slot.iter().all(|&s| (0.0..=1.0).contains(&s)));
        }
    }

    #[test]
    fn training_nodes_stay_clamped() {
        let f = fixture(4);
        let c = ctx(&f, LabelMode::Binary);
        let scores = Propagation::default().propagate(&c);
        for &idx in &f.train.articles[..10] {
            let expected = label_to_unit(f.corpus.articles[idx].label);
            assert!((scores[0][idx] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn beats_chance_on_binary_articles() {
        let f = fixture(5);
        let c = ctx(&f, LabelMode::Binary);
        let preds = Propagation::default().fit_predict(&c);
        // Evaluate on non-train articles.
        let train: std::collections::HashSet<usize> = f.train.articles.iter().copied().collect();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, a) in f.corpus.articles.iter().enumerate() {
            if train.contains(&i) {
                continue;
            }
            total += 1;
            if preds.articles[i] == usize::from(a.label.is_true_group()) {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.54, "LP accuracy {acc:.3} not above chance");
    }

    #[test]
    fn multiclass_predictions_are_valid_indices() {
        let f = fixture(6);
        let c = ctx(&f, LabelMode::MultiClass);
        let preds = Propagation::default().fit_predict(&c);
        assert!(preds.articles.iter().all(|&p| p < 6));
        assert!(preds.creators.iter().all(|&p| p < 6));
        assert!(preds.subjects.iter().all(|&p| p < 6));
    }

    #[test]
    fn deterministic() {
        let f = fixture(8);
        let c = ctx(&f, LabelMode::Binary);
        let a = Propagation::default().fit_predict(&c);
        let b = Propagation::default().fit_predict(&c);
        assert_eq!(a, b);
    }
}

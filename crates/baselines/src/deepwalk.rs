//! DeepWalk (Perozzi et al., KDD 2014): truncated random walks over the
//! News-HSN feed a skip-gram model with negative sampling; the learned
//! node embeddings are classified per entity type with the linear SVM —
//! exactly the protocol the paper describes for this baseline.

use crate::embeddings::{negative_table, Sgns};
use crate::svm::{LinearSvm, SvmConfig};
use crate::{CredibilityModel, ExperimentContext, Predictions};
use fd_graph::{generate_biased_walks, BiasedWalkConfig, NodeRef, NodeType, WalkConfig};
use fd_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// DeepWalk hyper-parameters.
#[derive(Debug, Clone)]
pub struct DeepWalkConfig {
    /// Embedding width.
    pub dim: usize,
    /// Walks per node (γ).
    pub walks_per_node: usize,
    /// Walk length (t).
    pub walk_length: usize,
    /// Skip-gram window (w).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Passes over the walk corpus.
    pub epochs: usize,
    /// Initial SGD learning rate (decays linearly to 1e-4).
    pub lr: f32,
    /// Downstream SVM settings.
    pub svm: SvmConfig,
    /// node2vec walk biases; `BiasedWalkConfig::uniform()` is classic
    /// DeepWalk, anything else reports as "node2vec" in result tables.
    pub bias: BiasedWalkConfig,
}

impl Default for DeepWalkConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            walks_per_node: 6,
            walk_length: 20,
            window: 4,
            negatives: 4,
            epochs: 2,
            lr: 0.05,
            svm: SvmConfig::default(),
            bias: BiasedWalkConfig::uniform(),
        }
    }
}

/// The DeepWalk baseline.
#[derive(Debug, Clone, Default)]
pub struct DeepWalk {
    /// Hyper-parameters.
    pub config: DeepWalkConfig,
}

impl DeepWalk {
    /// A node2vec variant: DeepWalk with second-order biased walks
    /// (Grover & Leskovec 2016) — an extension beyond the paper's
    /// baseline set, used by the ablation harness.
    pub fn node2vec(p: f64, q: f64) -> Self {
        Self { config: DeepWalkConfig { bias: BiasedWalkConfig { p, q }, ..Default::default() } }
    }

    fn is_uniform(&self) -> bool {
        self.config.bias.p == 1.0 && self.config.bias.q == 1.0
    }
}

impl DeepWalk {
    /// Learns embeddings for every node (exposed for tests/ablations).
    pub fn embed(&self, ctx: &ExperimentContext<'_>) -> Vec<Matrix> {
        let graph = &ctx.corpus.graph;
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ SEED_MIX);
        let walk_config = WalkConfig {
            walks_per_node: self.config.walks_per_node,
            walk_length: self.config.walk_length,
        };
        let walks = generate_biased_walks(graph, &walk_config, &self.config.bias, &mut rng);

        // Node frequencies in the corpus drive negative sampling.
        let mut freq = vec![0.0f64; graph.n_nodes()];
        for walk in &walks {
            for &node in walk {
                freq[node] += 1.0;
            }
        }
        let negatives = negative_table(&freq);

        let mut sgns = Sgns::new(graph.n_nodes(), self.config.dim, &mut rng);
        // Total positive pairs, for the linear LR decay.
        let pairs_per_pass: usize = walks
            .iter()
            .map(|w| w.len() * 2 * self.config.window.min(w.len()))
            .sum();
        let total = (pairs_per_pass * self.config.epochs).max(1);
        let mut seen = 0usize;
        for _epoch in 0..self.config.epochs {
            for walk in &walks {
                for (i, &center) in walk.iter().enumerate() {
                    let lo = i.saturating_sub(self.config.window);
                    let hi = (i + self.config.window + 1).min(walk.len());
                    for (j, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                        if i == j {
                            continue;
                        }
                        let lr = (self.config.lr
                            * (1.0 - seen as f32 / total as f32))
                            .max(1e-4);
                        let negs: Vec<usize> = (0..self.config.negatives)
                            .map(|_| negatives.sample(&mut rng))
                            .collect();
                        sgns.step(center, context, &negs, lr, false);
                        seen += 1;
                    }
                }
            }
        }
        (0..graph.n_nodes()).map(|i| sgns.embedding_normalised(i)).collect()
    }
}

/// Classifies per-type embeddings with OvR SVMs; shared with LINE.
pub(crate) fn classify_embeddings(
    ctx: &ExperimentContext<'_>,
    embeddings: &[Matrix],
    svm_config: &SvmConfig,
    seed: u64,
) -> Predictions {
    let graph = &ctx.corpus.graph;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut predictions = Predictions::zeroed(ctx);
    for ty in NodeType::ALL {
        let train_ids = ctx.train.for_type(ty);
        if train_ids.is_empty() {
            continue;
        }
        let features: Vec<&Matrix> = train_ids
            .iter()
            .map(|&idx| &embeddings[graph.global_id(NodeRef { ty, idx })])
            .collect();
        let targets: Vec<usize> = train_ids.iter().map(|&i| ctx.target(ty, i)).collect();
        let model = LinearSvm::train(&features, &targets, ctx.n_classes(), svm_config, &mut rng);
        let out = predictions.for_type_mut(ty);
        for (idx, slot) in out.iter_mut().enumerate() {
            *slot = model.predict(&embeddings[graph.global_id(NodeRef { ty, idx })]);
        }
    }
    predictions
}

impl CredibilityModel for DeepWalk {
    fn name(&self) -> &'static str {
        if self.is_uniform() {
            "deepwalk"
        } else {
            "node2vec"
        }
    }

    fn fit_predict(&self, ctx: &ExperimentContext<'_>) -> Predictions {
        let embeddings = self.embed(ctx);
        classify_embeddings(ctx, &embeddings, &self.config.svm, ctx.seed ^ 0x00d1)
    }
}

/// Seed-mixing constant so DeepWalk's randomness is decorrelated from the
/// other models sharing the run seed.
const SEED_MIX: u64 = 0xdeed_7a1c;

#[cfg(test)]
mod tests {
    use super::*;
    use fd_data::{
        generate, CvSplits, ExperimentContext, ExplicitFeatures, GeneratorConfig, LabelMode,
        TokenizedCorpus, TrainSets,
    };
    use rand::{rngs::StdRng, SeedableRng};

    fn fixture() -> (fd_data::Corpus, TokenizedCorpus, ExplicitFeatures, TrainSets) {
        let corpus = generate(&GeneratorConfig::politifact().scaled(0.012), 31);
        let tokenized = TokenizedCorpus::build(&corpus, 10, 3000);
        let mut rng = StdRng::seed_from_u64(1);
        let train = TrainSets {
            articles: CvSplits::new(corpus.articles.len(), 10, &mut rng).fold(0).0,
            creators: CvSplits::new(corpus.creators.len(), 10, &mut rng).fold(0).0,
            subjects: CvSplits::new(corpus.subjects.len(), 6, &mut rng).fold(0).0,
        };
        let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 40);
        (corpus, tokenized, explicit, train)
    }

    #[test]
    fn embeddings_place_articles_near_their_creator() {
        let (corpus, tokenized, explicit, train) = fixture();
        let ctx = ExperimentContext {
            corpus: &corpus,
            tokenized: &tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed: 3,
        };
        let embeddings = DeepWalk::default().embed(&ctx);
        assert_eq!(embeddings.len(), corpus.graph.n_nodes());
        // Cosine similarity (embeddings are unit-norm) between an
        // article and its own creator must exceed the similarity to a
        // random other creator, on average.
        let mut own = 0.0f32;
        let mut other = 0.0f32;
        let mut n = 0;
        for a in 0..corpus.articles.len().min(120) {
            let creator = corpus.graph.author_of(a).unwrap();
            let far = (creator + corpus.creators.len() / 2) % corpus.creators.len();
            if far == creator {
                continue;
            }
            let ea = &embeddings[corpus.graph.global_id(NodeRef { ty: NodeType::Article, idx: a })];
            let ec = &embeddings[corpus.graph.global_id(NodeRef { ty: NodeType::Creator, idx: creator })];
            let ef = &embeddings[corpus.graph.global_id(NodeRef { ty: NodeType::Creator, idx: far })];
            own += ea.dot(ec);
            other += ea.dot(ef);
            n += 1;
        }
        let (own, other) = (own / n as f32, other / n as f32);
        assert!(
            own > other + 0.05,
            "own-creator similarity {own:.3} not above random {other:.3}"
        );
    }

    #[test]
    fn node2vec_variant_reports_its_name_and_runs() {
        let (corpus, tokenized, explicit, train) = fixture();
        let ctx = ExperimentContext {
            corpus: &corpus,
            tokenized: &tokenized,
            explicit: &explicit,
            train: &train,
            mode: LabelMode::Binary,
            seed: 4,
        };
        let n2v = DeepWalk::node2vec(4.0, 0.5);
        assert_eq!(n2v.name(), "node2vec");
        assert_eq!(DeepWalk::default().name(), "deepwalk");
        let preds = n2v.fit_predict(&ctx);
        assert_eq!(preds.articles.len(), corpus.articles.len());
        // Biased walks must actually change the learned embedding.
        let uniform_emb = DeepWalk::default().embed(&ctx);
        let biased_emb = n2v.embed(&ctx);
        assert_ne!(uniform_emb[0], biased_emb[0]);
    }
}

//! End-to-end checks: every baseline runs on a small synthetic corpus,
//! produces valid predictions, is deterministic, and the signal-matched
//! methods beat chance on the signal they are supposed to exploit.

use fd_baselines::{
    default_baselines, CredibilityModel, DeepWalk, ExperimentContext, Line, Predictions,
    Propagation, RnnBaseline, SvmBaseline,
};
use fd_data::{
    generate, sample_ratio, Corpus, CvSplits, ExplicitFeatures, GeneratorConfig, LabelMode,
    TokenizedCorpus, TrainSets,
};
use fd_graph::NodeType;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashSet;

struct Fixture {
    corpus: Corpus,
    tokenized: TokenizedCorpus,
    explicit: ExplicitFeatures,
    train: TrainSets,
    test_articles: Vec<usize>,
}

fn fixture(seed: u64, theta: f64) -> Fixture {
    let corpus = generate(&GeneratorConfig::politifact().scaled(0.015), seed);
    let tokenized = TokenizedCorpus::build(&corpus, 12, 4000);
    let mut rng = StdRng::seed_from_u64(seed ^ 99);
    let article_cv = CvSplits::new(corpus.articles.len(), 10, &mut rng);
    let creator_cv = CvSplits::new(corpus.creators.len(), 10, &mut rng);
    let subject_cv = CvSplits::new(corpus.subjects.len(), 6, &mut rng);
    let (article_train, test_articles) = article_cv.fold(0);
    let train = TrainSets {
        articles: sample_ratio(&article_train, theta, &mut rng),
        creators: sample_ratio(&creator_cv.fold(0).0, theta, &mut rng),
        subjects: sample_ratio(&subject_cv.fold(0).0, theta, &mut rng),
    };
    let explicit = ExplicitFeatures::extract(&corpus, &tokenized, &train, 60);
    Fixture { corpus, tokenized, explicit, train, test_articles }
}

fn ctx<'a>(f: &'a Fixture, mode: LabelMode) -> ExperimentContext<'a> {
    ExperimentContext {
        corpus: &f.corpus,
        tokenized: &f.tokenized,
        explicit: &f.explicit,
        train: &f.train,
        mode,
        seed: 1234,
    }
}

fn article_test_accuracy(f: &Fixture, preds: &Predictions, mode: LabelMode) -> f64 {
    let mut correct = 0usize;
    for &i in &f.test_articles {
        if preds.articles[i] == mode.target(f.corpus.articles[i].label) {
            correct += 1;
        }
    }
    correct as f64 / f.test_articles.len() as f64
}

/// Accuracy on the *training* articles — a learning smoke test for the
/// weaker-signal methods whose generalisation at this miniature scale is
/// dominated by noise (their test-set behaviour is exercised at realistic
/// scale by the fig4/fig5 sweep; see EXPERIMENTS.md).
fn article_train_accuracy(f: &Fixture, preds: &Predictions, mode: LabelMode) -> f64 {
    let mut correct = 0usize;
    for &i in &f.train.articles {
        if preds.articles[i] == mode.target(f.corpus.articles[i].label) {
            correct += 1;
        }
    }
    correct as f64 / f.train.articles.len() as f64
}

fn check_shapes(f: &Fixture, preds: &Predictions, n_classes: usize) {
    assert_eq!(preds.articles.len(), f.corpus.articles.len());
    assert_eq!(preds.creators.len(), f.corpus.creators.len());
    assert_eq!(preds.subjects.len(), f.corpus.subjects.len());
    for ty in NodeType::ALL {
        assert!(preds.for_type(ty).iter().all(|&p| p < n_classes));
    }
}

#[test]
fn all_baselines_produce_valid_predictions() {
    let f = fixture(11, 1.0);
    for mode in [LabelMode::Binary, LabelMode::MultiClass] {
        let c = ctx(&f, mode);
        for model in default_baselines() {
            let preds = model.fit_predict(&c);
            check_shapes(&f, &preds, mode.n_classes());
        }
    }
}

#[test]
fn baseline_names_are_the_paper_names() {
    let names: HashSet<&str> = default_baselines().iter().map(|m| m.name()).collect();
    for expected in ["lp", "deepwalk", "line", "svm", "rnn"] {
        assert!(names.contains(expected), "missing baseline {expected}");
    }
}

#[test]
fn svm_beats_chance_on_text_signal() {
    // Test-set accuracy at this miniature scale (~21 held-out articles)
    // swings between ~0.43 and ~0.81 with the seed, so like the other
    // weak-signal baselines this is a learning smoke test on the
    // training articles; test-set behaviour is exercised at realistic
    // scale by the sweep harness.
    let f = fixture(21, 1.0);
    let c = ctx(&f, LabelMode::Binary);
    let acc =
        article_train_accuracy(&f, &SvmBaseline::default().fit_predict(&c), LabelMode::Binary);
    assert!(acc > 0.65, "svm binary article train accuracy {acc:.3}");
}

#[test]
fn propagation_beats_chance_on_graph_signal() {
    let f = fixture(22, 1.0);
    let c = ctx(&f, LabelMode::Binary);
    let acc = article_test_accuracy(&f, &Propagation::default().fit_predict(&c), LabelMode::Binary);
    assert!(acc > 0.55, "lp binary article accuracy {acc:.3}");
}

#[test]
fn deepwalk_learns_graph_signal() {
    let f = fixture(23, 1.0);
    let c = ctx(&f, LabelMode::Binary);
    let acc = article_train_accuracy(&f, &DeepWalk::default().fit_predict(&c), LabelMode::Binary);
    assert!(acc > 0.60, "deepwalk binary article train accuracy {acc:.3}");
}

#[test]
fn line_learns_graph_signal() {
    let f = fixture(24, 1.0);
    let c = ctx(&f, LabelMode::Binary);
    let acc = article_train_accuracy(&f, &Line::default().fit_predict(&c), LabelMode::Binary);
    assert!(acc > 0.60, "line binary article train accuracy {acc:.3}");
}

#[test]
fn rnn_learns_text_signal() {
    let f = fixture(25, 1.0);
    let c = ctx(&f, LabelMode::Binary);
    let mut config = RnnBaseline::default();
    config.config.epochs = 14; // slightly reduced to keep the test quick
    let acc = article_train_accuracy(&f, &config.fit_predict(&c), LabelMode::Binary);
    assert!(acc > 0.65, "rnn binary article train accuracy {acc:.3}");
}

#[test]
fn baselines_are_deterministic() {
    let f = fixture(26, 0.5);
    let c = ctx(&f, LabelMode::Binary);
    for model in [
        Box::new(SvmBaseline::default()) as Box<dyn CredibilityModel>,
        Box::new(Propagation::default()),
        Box::new(DeepWalk::default()),
    ] {
        let a = model.fit_predict(&c);
        let b = model.fit_predict(&c);
        assert_eq!(a, b, "{} is not deterministic", model.name());
    }
}

#[test]
fn low_theta_still_runs() {
    let f = fixture(27, 0.1);
    let c = ctx(&f, LabelMode::MultiClass);
    for model in default_baselines() {
        if model.name() == "rnn" {
            continue; // covered separately; keep the suite fast
        }
        let preds = model.fit_predict(&c);
        check_shapes(&f, &preds, 6);
    }
}

//! Property tests on the metric algebra: bounds, symmetries and
//! consistency relations that must hold for any confusion matrix.

use fd_metrics::{ConfusionMatrix, MetricKind};
use proptest::prelude::*;

/// Strategy: parallel truth/prediction vectors over k classes.
fn labelled(k: usize, n: usize) -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        prop::collection::vec(0..k, n..n + 30),
        prop::collection::vec(0..k, n + 30),
    )
        .prop_map(|(truth, pred)| {
            let n = truth.len();
            (truth, pred[..n].to_vec())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_metrics_are_probabilities((truth, pred) in labelled(6, 5)) {
        let cm = ConfusionMatrix::from_pairs(6, &truth, &pred);
        for kind in MetricKind::ALL {
            let v = cm.metric(kind);
            prop_assert!((0.0..=1.0).contains(&v), "{kind:?} = {v}");
        }
    }

    #[test]
    fn perfect_predictions_score_one(truth in prop::collection::vec(0..4usize, 1..40)) {
        let cm = ConfusionMatrix::from_pairs(4, &truth, &truth);
        prop_assert_eq!(cm.accuracy(), 1.0);
        prop_assert_eq!(cm.macro_recall(), {
            // Recall is 1 for present classes, 0 for absent ones; the
            // macro average counts absent classes as 0.
            let present = truth.iter().collect::<std::collections::HashSet<_>>().len();
            present as f64 / 4.0
        });
    }

    #[test]
    fn f1_is_a_harmonic_mean((truth, pred) in labelled(2, 5)) {
        let cm = ConfusionMatrix::from_pairs(2, &truth, &pred);
        let (p, r, f1) = (cm.precision(1), cm.recall(1), cm.f1(1));
        // Harmonic mean lies between min and max of its inputs and never
        // exceeds the arithmetic mean.
        prop_assert!(f1 <= (p + r) / 2.0 + 1e-9);
        if p > 0.0 && r > 0.0 {
            prop_assert!(f1 >= p.min(r) - 1e-9);
            prop_assert!(f1 <= p.max(r) + 1e-9);
        } else {
            prop_assert_eq!(f1, 0.0);
        }
    }

    #[test]
    fn accuracy_equals_trace_fraction((truth, pred) in labelled(5, 3)) {
        let cm = ConfusionMatrix::from_pairs(5, &truth, &pred);
        let trace: u64 = (0..5).map(|i| cm.count(i, i)).sum();
        prop_assert!((cm.accuracy() - trace as f64 / truth.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_concatenation((t1, p1) in labelled(3, 2), (t2, p2) in labelled(3, 2)) {
        let mut merged = ConfusionMatrix::from_pairs(3, &t1, &p1);
        merged.merge(&ConfusionMatrix::from_pairs(3, &t2, &p2));
        let concat_t: Vec<usize> = t1.iter().chain(&t2).copied().collect();
        let concat_p: Vec<usize> = p1.iter().chain(&p2).copied().collect();
        let direct = ConfusionMatrix::from_pairs(3, &concat_t, &concat_p);
        prop_assert_eq!(merged, direct);
    }

    #[test]
    fn binary_precision_recall_swap_under_transpose((truth, pred) in labelled(2, 5)) {
        // Swapping truth and prediction swaps precision and recall.
        let cm = ConfusionMatrix::from_pairs(2, &truth, &pred);
        let swapped = ConfusionMatrix::from_pairs(2, &pred, &truth);
        prop_assert!((cm.precision(1) - swapped.recall(1)).abs() < 1e-12);
        prop_assert!((cm.recall(1) - swapped.precision(1)).abs() < 1e-12);
        prop_assert!((cm.accuracy() - swapped.accuracy()).abs() < 1e-12);
    }

    #[test]
    fn permuting_observations_is_irrelevant((truth, pred) in labelled(4, 4), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..truth.len()).collect();
        order.shuffle(&mut rng);
        let t2: Vec<usize> = order.iter().map(|&i| truth[i]).collect();
        let p2: Vec<usize> = order.iter().map(|&i| pred[i]).collect();
        prop_assert_eq!(
            ConfusionMatrix::from_pairs(4, &truth, &pred),
            ConfusionMatrix::from_pairs(4, &t2, &p2)
        );
    }
}

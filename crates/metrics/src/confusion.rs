//! Confusion matrix and the metrics derived from it.

use serde::{Deserialize, Serialize};

/// The four metrics the paper plots, in figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Fraction of correct predictions.
    Accuracy,
    /// F1 (binary) / Macro-F1 (multi-class).
    F1,
    /// Precision (binary) / Macro-Precision.
    Precision,
    /// Recall (binary) / Macro-Recall.
    Recall,
}

impl MetricKind {
    /// All four, in the paper's subplot order.
    pub const ALL: [MetricKind; 4] = [
        MetricKind::Accuracy,
        MetricKind::F1,
        MetricKind::Precision,
        MetricKind::Recall,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Accuracy => "Accuracy",
            MetricKind::F1 => "F1",
            MetricKind::Precision => "Precision",
            MetricKind::Recall => "Recall",
        }
    }
}

/// A `k x k` confusion matrix; rows = ground truth, columns = prediction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty `k`-class matrix.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "ConfusionMatrix: k must be positive");
        Self { k, counts: vec![0; k * k] }
    }

    /// Builds a matrix directly from parallel truth/prediction slices.
    ///
    /// # Panics
    /// Panics on length mismatch or out-of-range class indices.
    pub fn from_pairs(k: usize, truth: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "from_pairs: {} truths vs {} predictions",
            truth.len(),
            predicted.len()
        );
        let mut cm = Self::new(k);
        for (&t, &p) in truth.iter().zip(predicted) {
            cm.record(t, p);
        }
        cm
    }

    /// Records one observation.
    ///
    /// # Panics
    /// Panics when either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.k && predicted < self.k, "record: class out of range");
        self.counts[truth * self.k + predicted] += 1;
    }

    /// Merges another matrix of the same arity (fold aggregation).
    ///
    /// # Panics
    /// Panics when the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.k, other.k, "merge: arity mismatch {} vs {}", self.k, other.k);
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.k
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Raw cell `(truth, predicted)`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.k + predicted]
    }

    /// Fraction of correct predictions; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.k).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Precision of `class`: TP / (TP + FP). Convention: 0 when the class
    /// is never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let predicted: u64 = (0..self.k).map(|t| self.count(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of `class`: TP / (TP + FN). Convention: 0 when the class
    /// never occurs.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let actual: u64 = (0..self.k).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 of `class`: harmonic mean of precision and recall (0 when both
    /// are 0).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean precision over all classes.
    pub fn macro_precision(&self) -> f64 {
        (0..self.k).map(|c| self.precision(c)).sum::<f64>() / self.k as f64
    }

    /// Unweighted mean recall over all classes.
    pub fn macro_recall(&self) -> f64 {
        (0..self.k).map(|c| self.recall(c)).sum::<f64>() / self.k as f64
    }

    /// Unweighted mean F1 over all classes.
    pub fn macro_f1(&self) -> f64 {
        (0..self.k).map(|c| self.f1(c)).sum::<f64>() / self.k as f64
    }

    /// The paper's metric for this matrix: binary matrices report the
    /// positive-class metric (`positive = 1`), larger matrices the macro
    /// variant.
    pub fn metric(&self, kind: MetricKind) -> f64 {
        match (kind, self.k) {
            (MetricKind::Accuracy, _) => self.accuracy(),
            (MetricKind::Precision, 2) => self.precision(1),
            (MetricKind::Recall, 2) => self.recall(1),
            (MetricKind::F1, 2) => self.f1(1),
            (MetricKind::Precision, _) => self.macro_precision(),
            (MetricKind::Recall, _) => self.macro_recall(),
            (MetricKind::F1, _) => self.macro_f1(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn perfect_predictions() {
        let cm = ConfusionMatrix::from_pairs(3, &[0, 1, 2, 1], &[0, 1, 2, 1]);
        close(cm.accuracy(), 1.0);
        close(cm.macro_f1(), 1.0);
        close(cm.macro_precision(), 1.0);
        close(cm.macro_recall(), 1.0);
    }

    #[test]
    fn binary_metrics_hand_checked() {
        // truth:     1 1 1 0 0
        // predicted: 1 0 1 1 0
        let cm = ConfusionMatrix::from_pairs(2, &[1, 1, 1, 0, 0], &[1, 0, 1, 1, 0]);
        close(cm.accuracy(), 3.0 / 5.0);
        close(cm.precision(1), 2.0 / 3.0);
        close(cm.recall(1), 2.0 / 3.0);
        close(cm.f1(1), 2.0 / 3.0);
    }

    #[test]
    fn class_never_predicted_gives_zero_precision() {
        let cm = ConfusionMatrix::from_pairs(2, &[0, 1], &[0, 0]);
        close(cm.precision(1), 0.0);
        close(cm.recall(1), 0.0);
        close(cm.f1(1), 0.0);
    }

    #[test]
    fn class_never_present_gives_zero_recall() {
        let cm = ConfusionMatrix::from_pairs(3, &[0, 0], &[0, 2]);
        close(cm.recall(2), 0.0);
        // Class 2 was predicted once, wrongly.
        close(cm.precision(2), 0.0);
    }

    #[test]
    fn macro_averages_are_unweighted() {
        // Class 0 dominant and perfectly predicted; class 1 always wrong.
        let cm = ConfusionMatrix::from_pairs(2, &[0, 0, 0, 0, 1], &[0, 0, 0, 0, 0]);
        close(cm.macro_recall(), (1.0 + 0.0) / 2.0);
        // Precision of 0: 4/5; precision of 1: 0.
        close(cm.macro_precision(), (0.8 + 0.0) / 2.0);
    }

    #[test]
    fn merge_accumulates_folds() {
        let mut a = ConfusionMatrix::from_pairs(2, &[1], &[1]);
        let b = ConfusionMatrix::from_pairs(2, &[0], &[1]);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        close(a.accuracy(), 0.5);
    }

    #[test]
    fn metric_dispatch_binary_vs_macro() {
        let binary = ConfusionMatrix::from_pairs(2, &[1, 0], &[1, 1]);
        close(binary.metric(MetricKind::Precision), binary.precision(1));
        let multi = ConfusionMatrix::from_pairs(6, &[0, 5, 3], &[0, 5, 2]);
        close(multi.metric(MetricKind::Precision), multi.macro_precision());
        close(multi.metric(MetricKind::Accuracy), 2.0 / 3.0);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let cm = ConfusionMatrix::new(4);
        close(cm.accuracy(), 0.0);
        close(cm.macro_f1(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn record_checks_bounds() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn merge_checks_arity() {
        let mut a = ConfusionMatrix::new(2);
        a.merge(&ConfusionMatrix::new(3));
    }

    #[test]
    fn serde_roundtrip() {
        let cm = ConfusionMatrix::from_pairs(2, &[1, 0, 1], &[1, 1, 0]);
        let json = serde_json::to_string(&cm).unwrap();
        let back: ConfusionMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cm);
    }
}

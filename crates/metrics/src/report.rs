//! Human-readable classification reports: a per-class breakdown table
//! and an aligned confusion-matrix rendering, for examples and the CLI.

use crate::ConfusionMatrix;

/// Renders the matrix with row/column labels, truth in rows.
///
/// `labels` must have one entry per class.
///
/// # Panics
/// Panics when `labels.len()` differs from the matrix arity.
pub fn render_confusion(cm: &ConfusionMatrix, labels: &[&str]) -> String {
    assert_eq!(
        labels.len(),
        cm.n_classes(),
        "render_confusion: {} labels for {} classes",
        labels.len(),
        cm.n_classes()
    );
    let width = labels
        .iter()
        .map(|l| l.len())
        .max()
        .unwrap_or(4)
        .max(6);
    let mut out = String::new();
    out.push_str(&format!("{:>width$} │", "t\\p", width = width));
    for l in labels {
        out.push_str(&format!(" {l:>width$}", width = width));
    }
    out.push('\n');
    out.push_str(&format!("{:─>width$}─┼", "", width = width));
    for _ in labels {
        out.push_str(&format!("─{:─>width$}", "", width = width));
    }
    out.push('\n');
    for (t, row_label) in labels.iter().enumerate() {
        out.push_str(&format!("{row_label:>width$} │", width = width));
        for p in 0..labels.len() {
            out.push_str(&format!(" {:>width$}", cm.count(t, p), width = width));
        }
        out.push('\n');
    }
    out
}

/// A per-class precision/recall/F1/support table plus the overall
/// accuracy and macro averages — the sklearn-style classification report.
pub fn classification_report(cm: &ConfusionMatrix, labels: &[&str]) -> String {
    assert_eq!(
        labels.len(),
        cm.n_classes(),
        "classification_report: {} labels for {} classes",
        labels.len(),
        cm.n_classes()
    );
    let name_width = labels.iter().map(|l| l.len()).max().unwrap_or(5).max(9);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_width$} {:>9} {:>9} {:>9} {:>9}\n",
        "class", "precision", "recall", "f1", "support",
        name_width = name_width
    ));
    for (c, label) in labels.iter().enumerate() {
        let support: u64 = (0..labels.len()).map(|p| cm.count(c, p)).sum();
        out.push_str(&format!(
            "{:<name_width$} {:>9.3} {:>9.3} {:>9.3} {:>9}\n",
            label,
            cm.precision(c),
            cm.recall(c),
            cm.f1(c),
            support,
            name_width = name_width
        ));
    }
    out.push_str(&format!(
        "\naccuracy {:.3} | macro precision {:.3} | macro recall {:.3} | macro f1 {:.3} | n = {}\n",
        cm.accuracy(),
        cm.macro_precision(),
        cm.macro_recall(),
        cm.macro_f1(),
        cm.total()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        ConfusionMatrix::from_pairs(2, &[1, 1, 1, 0, 0], &[1, 0, 1, 1, 0])
    }

    #[test]
    fn confusion_render_contains_all_cells() {
        let s = render_confusion(&sample(), &["fake", "real"]);
        assert!(s.contains("fake"));
        assert!(s.contains("real"));
        // Cells: (real,real)=2, (real,fake)=1, (fake,real)=1, (fake,fake)=1.
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn report_contains_per_class_rows_and_summary() {
        let s = classification_report(&sample(), &["fake", "real"]);
        assert!(s.contains("precision"));
        assert!(s.contains("fake"));
        assert!(s.contains("accuracy 0.600"));
        assert!(s.contains("n = 5"));
    }

    #[test]
    #[should_panic(expected = "labels for")]
    fn render_rejects_wrong_label_count() {
        let _ = render_confusion(&sample(), &["only-one"]);
    }

    #[test]
    #[should_panic(expected = "labels for")]
    fn report_rejects_wrong_label_count() {
        let _ = classification_report(&sample(), &["a", "b", "c"]);
    }
}

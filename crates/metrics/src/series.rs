//! Result containers for the θ-sweep experiments (Figs 4 and 5) with
//! aligned-table printing and JSON export.

use crate::MetricKind;
use fd_obs::{push_json_f64, push_json_string};
use serde::{Deserialize, Serialize};

/// One method's metric values across the sampled θ grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodSeries {
    /// Method display name ("FakeDetector", "deepwalk", …).
    pub method: String,
    /// `values[i][m]` = metric `MetricKind::ALL[m]` at `thetas[i]`.
    pub values: Vec<[f64; 4]>,
}

impl MethodSeries {
    /// JSON export of one series. The method name goes through the
    /// shared fd-obs escaper, so display names containing quotes or
    /// backslashes produce valid JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 40 * self.values.len());
        self.push_json(&mut out, "");
        out
    }

    fn push_json(&self, out: &mut String, indent: &str) {
        out.push_str("{\n");
        out.push_str(indent);
        out.push_str("  \"method\": ");
        push_json_string(out, &self.method);
        out.push_str(",\n");
        out.push_str(indent);
        out.push_str("  \"values\": [");
        for (i, row) in self.values.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                push_json_f64(out, *v);
            }
            out.push(']');
        }
        out.push_str("]\n");
        out.push_str(indent);
        out.push('}');
    }
}

/// Results of one subplot row: every method × θ × the four metrics, for
/// one entity type and label mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResults {
    /// What was inferred ("articles", "creators", "subjects").
    pub entity: String,
    /// "bi-class" or "multi-class".
    pub mode: String,
    /// The θ grid.
    pub thetas: Vec<f64>,
    /// One series per method, in presentation order.
    pub series: Vec<MethodSeries>,
}

impl SweepResults {
    /// An empty result set over a θ grid.
    pub fn new(entity: &str, mode: &str, thetas: Vec<f64>) -> Self {
        Self { entity: entity.into(), mode: mode.into(), thetas, series: Vec::new() }
    }

    /// Appends one method's series.
    ///
    /// # Panics
    /// Panics when the series length does not match the θ grid.
    pub fn push(&mut self, method: &str, values: Vec<[f64; 4]>) {
        assert_eq!(
            values.len(),
            self.thetas.len(),
            "push: series for {method} has {} points, grid has {}",
            values.len(),
            self.thetas.len()
        );
        self.series.push(MethodSeries { method: method.into(), values });
    }

    /// Looks up a method's value for one metric at one θ index.
    pub fn value(&self, method: &str, theta_idx: usize, metric: MetricKind) -> Option<f64> {
        let m = MetricKind::ALL.iter().position(|&k| k == metric)?;
        self.series
            .iter()
            .find(|s| s.method == method)
            .map(|s| s.values[theta_idx][m])
    }

    /// Renders one metric as the paper presents it: methods as rows, θ as
    /// columns.
    pub fn table(&self, metric: MetricKind) -> String {
        let m = MetricKind::ALL
            .iter()
            .position(|&k| k == metric)
            .expect("metric is one of ALL");
        let mut out = String::new();
        out.push_str(&format!(
            "{} {} — {}\n",
            self.mode, self.entity, metric.name()
        ));
        out.push_str(&format!("{:<14}", "method"));
        for t in &self.thetas {
            out.push_str(&format!(" θ={:<5.2}", t));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:<14}", s.method));
            for v in &s.values {
                out.push_str(&format!(" {:<7.4}", v[m]));
            }
            out.push('\n');
        }
        out
    }

    /// All four metric tables, concatenated — one full figure row.
    pub fn all_tables(&self) -> String {
        MetricKind::ALL
            .iter()
            .map(|&k| self.table(k))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// JSON export for external re-plotting. Entity, mode and method
    /// names are escaped through the shared fd-obs escaper (they are
    /// arbitrary display strings), and the output parses back with
    /// [`serde_json::from_str`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 128 * self.series.len());
        out.push_str("{\n  \"entity\": ");
        push_json_string(&mut out, &self.entity);
        out.push_str(",\n  \"mode\": ");
        push_json_string(&mut out, &self.mode);
        out.push_str(",\n  \"thetas\": [");
        for (i, t) in self.thetas.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_json_f64(&mut out, *t);
        }
        out.push_str("],\n  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            s.push_json(&mut out, "    ");
        }
        if !self.series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepResults {
        let mut r = SweepResults::new("articles", "bi-class", vec![0.1, 0.5, 1.0]);
        r.push(
            "FakeDetector",
            vec![[0.63, 0.7, 0.6, 0.8], [0.65, 0.72, 0.62, 0.81], [0.66, 0.73, 0.63, 0.82]],
        );
        r.push(
            "svm",
            vec![[0.55, 0.6, 0.5, 0.75], [0.58, 0.62, 0.52, 0.76], [0.60, 0.64, 0.54, 0.77]],
        );
        r
    }

    #[test]
    fn value_lookup() {
        let r = sample();
        assert_eq!(r.value("FakeDetector", 0, MetricKind::Accuracy), Some(0.63));
        assert_eq!(r.value("svm", 2, MetricKind::Recall), Some(0.77));
        assert_eq!(r.value("missing", 0, MetricKind::F1), None);
    }

    #[test]
    fn table_contains_all_methods_and_thetas() {
        let r = sample();
        let t = r.table(MetricKind::Accuracy);
        assert!(t.contains("FakeDetector"));
        assert!(t.contains("svm"));
        assert!(t.contains("θ=0.10"));
        assert!(t.contains("0.6300"));
    }

    #[test]
    fn all_tables_has_four_sections() {
        let r = sample();
        let t = r.all_tables();
        for k in MetricKind::ALL {
            assert!(t.contains(k.name()), "missing {}", k.name());
        }
    }

    #[test]
    #[should_panic(expected = "series for bad has 1 points")]
    fn push_checks_grid_length() {
        let mut r = sample();
        r.push("bad", vec![[0.0; 4]]);
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let back: SweepResults = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back.series.len(), 2);
        assert_eq!(back.thetas, r.thetas);
        assert_eq!(back.series[0].values[1][0], 0.65);
    }

    #[test]
    fn json_escapes_method_and_entity_names() {
        let mut r = SweepResults::new("articles \"held-out\"", "bi\\class", vec![0.5]);
        r.push("svm \"rbf\"\nvariant", vec![[0.1, 0.2, 0.3, 0.4]]);
        let json = r.to_json();
        let back: SweepResults = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("escaped names broke the JSON: {e}\n{json}"));
        assert_eq!(back.entity, "articles \"held-out\"");
        assert_eq!(back.mode, "bi\\class");
        assert_eq!(back.series[0].method, "svm \"rbf\"\nvariant");
        assert_eq!(back.series[0].values[0], [0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn method_series_json_parses_standalone() {
        let series = MethodSeries {
            method: "line \"v2\"".into(),
            values: vec![[1.0, 0.5, 0.25, 0.125]],
        };
        let back: MethodSeries = serde_json::from_str(&series.to_json()).unwrap();
        assert_eq!(back.method, series.method);
        assert_eq!(back.values, series.values);
    }
}

//! Evaluation metrics for the credibility-inference experiments.
//!
//! Section 5.1.3 of the paper: bi-class experiments report Accuracy,
//! Precision, Recall and F1 (positive class = {True, Mostly True, Half
//! True}); multi-class experiments report Accuracy and the macro-averaged
//! Precision/Recall/F1 over the six Truth-O-Meter classes.
//!
//! ```
//! use fd_metrics::ConfusionMatrix;
//!
//! let mut cm = ConfusionMatrix::new(2);
//! cm.record(1, 1);
//! cm.record(1, 0);
//! cm.record(0, 0);
//! assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-9);
//! assert_eq!(cm.precision(1), 1.0);
//! assert_eq!(cm.recall(1), 0.5);
//! ```

mod confusion;
mod report;
mod series;

pub use confusion::{ConfusionMatrix, MetricKind};
pub use report::{classification_report, render_confusion};
pub use series::{MethodSeries, SweepResults};

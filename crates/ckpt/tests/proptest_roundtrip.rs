//! Property tests for the checkpoint format: `checkpoint -> bytes ->
//! checkpoint` must be bit-exact across random seeds and tensor
//! shapes, and any single flipped byte or truncated tail must fail a
//! checksum (and, at store level, trigger fallback to the previous
//! good file).

use fd_ckpt::{CheckpointStore, CkptError, TensorEntry, TrainCheckpoint};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Builds a checkpoint whose every field is derived from `seed`,
/// including denormal/negative-zero/extreme `f32` values, so the
/// round-trip property covers the awkward corners of the value space.
fn checkpoint_from_seed(seed: u64, n_tensors: usize, max_dim: usize) -> TrainCheckpoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tensor = |tag: &str, i: usize| {
        let rows = rng.gen_range(1..=max_dim);
        let cols = rng.gen_range(1..=max_dim);
        let values: Vec<f32> = (0..rows * cols)
            .map(|j| match j % 7 {
                0 => 0.0,
                1 => -0.0,
                2 => f32::MIN_POSITIVE / 2.0, // subnormal
                3 => f32::MAX * rng.gen_range(0.1..1.0),
                4 => -rng.gen_range(0.0f32..1e-30),
                _ => rng.gen_range(-10.0f32..10.0),
            })
            .collect();
        TensorEntry::from_f32(&format!("{tag}.{i}"), rows, cols, &values)
    };
    let n_hist = seed as usize % 9;
    TrainCheckpoint {
        epoch: seed % 1000,
        opt_step: seed % 997,
        lr: 0.03 / (1 + seed % 5) as f64,
        seed,
        vocab: 100 + seed % 50,
        explicit_dim: seed % 64,
        n_classes: 2 + seed % 3,
        since_best: seed % 17,
        lr_halvings: seed % 4,
        best_acc: if seed.is_multiple_of(2) { Some((seed % 100) as f64 / 100.0) } else { None },
        config_fingerprint: format!("fp-{seed}"),
        losses: (0..n_hist).map(|i| (i as f64).exp2().recip()).collect(),
        grad_norms: (0..n_hist).map(|i| i as f64 + 0.5).collect(),
        params: (0..n_tensors).map(|i| tensor("p", i)).collect(),
        opt_m: (0..n_tensors).map(|i| tensor("p", i)).collect(),
        opt_v: (0..n_tensors).map(|i| tensor("p", i)).collect(),
        best_params: if seed.is_multiple_of(2) { (0..n_tensors).map(|i| tensor("p", i)).collect() } else { Vec::new() },
    }
}

/// Bitwise equality: `PartialEq` on f64 treats `-0.0 == 0.0`, so
/// compare the raw bit patterns too.
fn assert_bit_exact(a: &TrainCheckpoint, b: &TrainCheckpoint) -> Result<(), TestCaseError> {
    prop_assert_eq!(a, b);
    for (ta, tb) in a.params.iter().chain(&a.best_params).zip(b.params.iter().chain(&b.best_params)) {
        for (va, vb) in ta.data.iter().zip(&tb.data) {
            prop_assert_eq!(va.to_bits(), vb.to_bits(), "value bits differ in {}", ta.name);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_is_bit_exact(seed in 0u64..1_000_000, n_tensors in 1usize..6, max_dim in 1usize..12) {
        let ckpt = checkpoint_from_seed(seed, n_tensors, max_dim);
        let bytes = ckpt.to_bytes();
        let restored = match TrainCheckpoint::from_bytes(&bytes) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::Fail(format!("decode failed: {e}"))),
        };
        assert_bit_exact(&ckpt, &restored)?;
        // Re-encoding the restored checkpoint reproduces the bytes:
        // encoding is deterministic, which the CI byte-diff relies on.
        prop_assert_eq!(restored.to_bytes(), bytes);
    }

    #[test]
    fn f32_narrowing_recovers_original_bits(seed in 0u64..1_000_000, dim in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f32> = (0..dim * dim)
            .map(|j| if j % 3 == 0 { -0.0 } else { rng.gen_range(-1e30f32..1e30) })
            .collect();
        let entry = TensorEntry::from_f32("t", dim, dim, &values);
        let decoded = TrainCheckpoint::from_bytes(
            &TrainCheckpoint { params: vec![entry], config_fingerprint: "fp".into(), ..TrainCheckpoint::default() }.to_bytes(),
        ).map_err(|e| TestCaseError::Fail(e.to_string()))?;
        let back = decoded.params[0].to_f32();
        for (orig, got) in values.iter().zip(&back) {
            prop_assert_eq!(orig.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn any_flipped_byte_is_detected(seed in 0u64..100_000, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let ckpt = checkpoint_from_seed(seed, 2, 6);
        let bytes = ckpt.to_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        // Either the parse rejects the damage, or (if the flip landed
        // in a stored-CRC field... no: then the CRC comparison fails;
        // every byte is covered by structure or checksum) — a flip must
        // NEVER yield a successfully-decoded different checkpoint.
        match TrainCheckpoint::from_bytes(&corrupt) {
            Err(_) => {}
            Ok(decoded) => {
                // The only acceptable success: flip was in a section
                // name of an *unknown* section — impossible here since
                // names are checked — or decoded state identical, which
                // can't happen for a bit flip. Fail loudly.
                prop_assert!(false, "flipped byte {pos} bit {bit} decoded silently: {:?} vs {:?}", decoded.epoch, ckpt.epoch);
            }
        }
    }

    #[test]
    fn any_truncation_is_detected(seed in 0u64..100_000, keep_frac in 0.0f64..1.0) {
        let ckpt = checkpoint_from_seed(seed, 2, 6);
        let bytes = ckpt.to_bytes();
        let keep = ((bytes.len() - 1) as f64 * keep_frac) as usize;
        prop_assert!(TrainCheckpoint::from_bytes(&bytes[..keep]).is_err(),
            "truncation to {keep}/{} bytes went undetected", bytes.len());
    }
}

#[test]
fn store_falls_back_past_randomly_corrupted_latest() {
    let dir = std::env::temp_dir().join(format!("fd-ckpt-proptest-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(77);

    for round in 0..10u64 {
        let good = checkpoint_from_seed(round, 2, 5);
        let good_path = store.save(&good).unwrap();
        let bad = checkpoint_from_seed(round + 1000, 2, 5);
        let bad_ckpt = TrainCheckpoint { epoch: good.epoch + 1000, ..bad };
        let bad_path = store.save(&bad_ckpt).unwrap();

        // Corrupt the newest file at a random position.
        let mut bytes = std::fs::read(&bad_path).unwrap();
        let pos = rng.gen_range(0..bytes.len());
        bytes[pos] ^= 1 << rng.gen_range(0..8u8);
        std::fs::write(&bad_path, &bytes).unwrap();

        let loaded = store.load_latest().unwrap().expect("good file remains");
        assert_eq!(loaded.checkpoint.epoch, good.epoch, "round {round}: fallback target");
        assert_eq!(loaded.path, good_path, "round {round}");
        assert_eq!(loaded.skipped.len(), 1, "round {round}");

        // Clean slate per round.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn error_messages_distinguish_corruption_kinds() {
    let ckpt = checkpoint_from_seed(3, 1, 3);
    let bytes = ckpt.to_bytes();

    let mut bad_magic = bytes.clone();
    bad_magic[1] = b'Z';
    let err = TrainCheckpoint::from_bytes(&bad_magic).unwrap_err();
    assert!(err.to_string().contains("magic"), "{err}");

    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x10;
    let err = TrainCheckpoint::from_bytes(&flipped).unwrap_err();
    assert!(err.to_string().contains("checksum"), "{err}");

    let err = TrainCheckpoint::from_bytes(&bytes[..10]).unwrap_err();
    assert!(matches!(err, CkptError::Corrupt(_)), "{err}");
}

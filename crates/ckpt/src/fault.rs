//! Seeded fault injection, driven by the `FD_FAULT` environment
//! variable.
//!
//! Faults are *deterministic*: each kind fires on a specific occurrence
//! counted from process start (the "nth" in the spec), so a failing
//! crash/recovery test replays identically. The grammar is a
//! comma-separated list of `kind:arg` terms:
//!
//! | spec | effect |
//! |------|--------|
//! | `io-error:N` | the Nth checkpoint I/O operation (1-based) fails with an injected `std::io::Error` |
//! | `torn-write:N` | the Nth checkpoint save writes only half the bytes, fsyncs, and renames anyway — simulating a crash between `write` and completion that the per-section CRC must catch |
//! | `slow-batch:MS` | every serve batch sleeps `MS` milliseconds before scoring |
//! | `panic-batch:N` | the Nth serve batch panics inside the scoring closure |
//! | `kill-after-ckpt:E` | `std::process::abort()` immediately after the checkpoint for epoch `E` is durably on disk — a deterministic SIGKILL stand-in |
//!
//! Example: `FD_FAULT=torn-write:2,io-error:5`.
//!
//! Process-global state keeps the hooks zero-cost when `FD_FAULT` is
//! unset (one atomic-free mutex lock per checkpoint save / serve
//! batch, nothing on hot paths). Tests that share a process use
//! [`set_spec`] to install a spec directly instead of racing on the
//! environment.

use std::sync::{Mutex, OnceLock};

/// Parsed `FD_FAULT` specification.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// 1-based index of the checkpoint I/O operation that fails.
    pub io_error_nth: Option<u64>,
    /// 1-based index of the checkpoint save that is torn.
    pub torn_write_nth: Option<u64>,
    /// Delay injected before scoring every serve batch.
    pub slow_batch_ms: Option<u64>,
    /// 1-based index of the serve batch that panics.
    pub panic_batch_nth: Option<u64>,
    /// Epoch after whose durable checkpoint the process aborts.
    pub kill_after_ckpt_epoch: Option<u64>,
}

impl FaultSpec {
    /// Parses the `FD_FAULT` grammar. Empty input yields the inert
    /// default spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = FaultSpec::default();
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, arg) = term
                .split_once(':')
                .ok_or_else(|| format!("FD_FAULT term {term:?} is not kind:arg"))?;
            let value: u64 = arg
                .trim()
                .parse()
                .map_err(|_| format!("FD_FAULT term {term:?}: {arg:?} is not a number"))?;
            match kind.trim() {
                "io-error" => out.io_error_nth = Some(value),
                "torn-write" => out.torn_write_nth = Some(value),
                "slow-batch" => out.slow_batch_ms = Some(value),
                "panic-batch" => out.panic_batch_nth = Some(value),
                "kill-after-ckpt" => out.kill_after_ckpt_epoch = Some(value),
                other => return Err(format!("FD_FAULT: unknown fault kind {other:?}")),
            }
        }
        Ok(out)
    }
}

#[derive(Debug, Default)]
struct FaultState {
    spec: FaultSpec,
    io_ops: u64,
    saves: u64,
    batches: u64,
}

fn state() -> &'static Mutex<FaultState> {
    static STATE: OnceLock<Mutex<FaultState>> = OnceLock::new();
    STATE.get_or_init(|| {
        let spec = match std::env::var("FD_FAULT") {
            Ok(raw) => FaultSpec::parse(&raw).unwrap_or_else(|why| {
                // A malformed spec must not silently disable the fault
                // the operator asked for — fail loudly at first use.
                panic!("{why}");
            }),
            Err(_) => FaultSpec::default(),
        };
        Mutex::new(FaultState { spec, ..FaultState::default() })
    })
}

fn lock() -> std::sync::MutexGuard<'static, FaultState> {
    // A panic while holding this lock (e.g. panic-batch firing inside a
    // caller that re-enters) must not wedge every later hook.
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs `spec` directly, bypassing `FD_FAULT`, and resets all
/// occurrence counters. `None` clears fault injection. Intended for
/// in-process tests; subprocess tests should set the environment
/// variable instead.
pub fn set_spec(spec: Option<FaultSpec>) {
    let mut st = lock();
    st.spec = spec.unwrap_or_default();
    st.io_ops = 0;
    st.saves = 0;
    st.batches = 0;
}

/// Counts a checkpoint I/O operation; returns the injected error if
/// this is the operation `io-error:N` targets.
pub fn io_error(site: &str) -> Option<std::io::Error> {
    let mut st = lock();
    st.spec.io_error_nth?;
    st.io_ops += 1;
    if Some(st.io_ops) == st.spec.io_error_nth {
        Some(std::io::Error::other(format!("FD_FAULT io-error injected at {site}")))
    } else {
        None
    }
}

/// Counts a checkpoint save; returns `true` if this save should be
/// torn (written truncated but renamed into place).
pub fn torn_write() -> bool {
    let mut st = lock();
    if st.spec.torn_write_nth.is_none() {
        return false;
    }
    st.saves += 1;
    Some(st.saves) == st.spec.torn_write_nth
}

/// The injected per-batch scoring delay, if `slow-batch` is active.
pub fn slow_batch() -> Option<std::time::Duration> {
    lock().spec.slow_batch_ms.map(std::time::Duration::from_millis)
}

/// Counts a serve batch; returns `true` if this batch should panic.
pub fn panic_batch() -> bool {
    let mut st = lock();
    if st.spec.panic_batch_nth.is_none() {
        return false;
    }
    st.batches += 1;
    Some(st.batches) == st.spec.panic_batch_nth
}

/// Whether the process should abort now that the checkpoint for
/// `epoch` is durable. The caller is expected to invoke
/// `std::process::abort()` — kept out of this function so it stays
/// testable.
pub fn kill_after_ckpt(epoch: u64) -> bool {
    lock().spec.kill_after_ckpt_epoch == Some(epoch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let spec = FaultSpec::parse("io-error:3, torn-write:1,slow-batch:25,panic-batch:2,kill-after-ckpt:7").unwrap();
        assert_eq!(spec.io_error_nth, Some(3));
        assert_eq!(spec.torn_write_nth, Some(1));
        assert_eq!(spec.slow_batch_ms, Some(25));
        assert_eq!(spec.panic_batch_nth, Some(2));
        assert_eq!(spec.kill_after_ckpt_epoch, Some(7));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("io-error").is_err());
        assert!(FaultSpec::parse("io-error:x").is_err());
        assert!(FaultSpec::parse("rm-rf:1").is_err());
    }

    #[test]
    fn parse_empty_is_inert() {
        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::default());
        assert_eq!(FaultSpec::parse("  ").unwrap(), FaultSpec::default());
    }

    // Counter behaviour is covered by the store integration tests via
    // set_spec; exercising the global singleton here would race with
    // them under the parallel test runner.
}

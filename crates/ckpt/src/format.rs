//! The versioned binary checkpoint format.
//!
//! A checkpoint file is a header plus a list of named sections, each
//! carrying its own CRC-32:
//!
//! ```text
//! magic    b"FDCK"
//! version  u32 LE            (currently 1)
//! count    u32 LE            number of sections
//! section* name_len u32 LE | name UTF-8 | payload_len u64 LE |
//!          crc32 u32 LE     | payload bytes
//! ```
//!
//! The per-section CRC-32 covers the section *name* followed by the
//! payload, so a flipped bit anywhere in a section — including one
//! that would rename it into an ignorable unknown section — fails the
//! checksum.
//!
//! All integers are little-endian; all floating-point payloads are
//! little-endian IEEE-754 `f64` words. The training state is `f32`
//! in memory — widening to `f64` is exact and narrowing back is exact
//! for values that came from `f32`, so a round-trip through the file is
//! bit-identical. That is the foundation of the bitwise-resume
//! invariant: kill-at-epoch-k + resume replays the exact weights the
//! uninterrupted run had at epoch k.
//!
//! Decoding is fully defensive: every read is bounds-checked, section
//! payloads are checksummed before they are interpreted, and any
//! mismatch (flipped byte, truncated tail, wrong magic) surfaces as
//! [`CkptError::Corrupt`] — the rotation store reacts by falling back
//! to the previous good file.

use crate::crc32::crc32_parts;

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 4] = *b"FDCK";

/// Current format version.
pub const VERSION: u32 = 1;

/// Hard cap on a single section payload (1 GiB) — rejects absurd
/// lengths from corrupt headers before any allocation happens.
const MAX_SECTION_BYTES: u64 = 1 << 30;

/// Why a checkpoint could not be written or read.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure (including injected `FD_FAULT` io-errors).
    Io(std::io::Error),
    /// The bytes are not a valid checkpoint: bad magic, unsupported
    /// version, checksum mismatch, truncation, or malformed payload.
    Corrupt(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CkptError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// One named tensor: shape plus row-major values.
///
/// Values live as `f64` here regardless of the in-memory precision of
/// the training stack; converting `f32 -> f64 -> f32` is lossless.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorEntry {
    /// Parameter name (the `fd_nn::Params` registry name).
    pub name: String,
    /// Row count.
    pub rows: u32,
    /// Column count.
    pub cols: u32,
    /// Row-major values, `rows * cols` long.
    pub data: Vec<f64>,
}

impl TensorEntry {
    /// A tensor entry from an `f32` slice (exact widening).
    pub fn from_f32(name: &str, rows: usize, cols: usize, values: &[f32]) -> Self {
        assert_eq!(values.len(), rows * cols, "TensorEntry: shape/data mismatch for {name}");
        Self {
            name: name.to_string(),
            rows: rows as u32,
            cols: cols as u32,
            data: values.iter().map(|&v| f64::from(v)).collect(),
        }
    }

    /// The values narrowed back to `f32` (exact for values written by
    /// [`TensorEntry::from_f32`]).
    pub fn to_f32(&self) -> Vec<f32> {
        self.data.iter().map(|&v| v as f32).collect()
    }
}

/// Everything `FakeDetector::fit` needs to continue a run as if it had
/// never stopped: weights, Adam moments and step, the epoch cursor,
/// the loss/grad-norm history, the early-stopping state, and enough
/// metadata to refuse resuming into a different experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainCheckpoint {
    /// Epochs completed (the resume cursor): the weights below are the
    /// state *entering* epoch `epoch`.
    pub epoch: u64,
    /// Adam step count (bias-correction exponent).
    pub opt_step: u64,
    /// Current learning rate — differs from the configured one after
    /// divergence-guard halvings.
    pub lr: f64,
    /// Experiment seed the run was started with.
    pub seed: u64,
    /// Vocabulary id-space the network was built for.
    pub vocab: u64,
    /// Explicit-feature width the network was built for.
    pub explicit_dim: u64,
    /// Class count the network was built for.
    pub n_classes: u64,
    /// Epochs since the best validation accuracy (early stopping).
    pub since_best: u64,
    /// Divergence-guard LR halvings applied so far.
    pub lr_halvings: u64,
    /// Best validation accuracy so far, when early stopping is on.
    pub best_acc: Option<f64>,
    /// Opaque fingerprint of the training configuration; resume refuses
    /// a checkpoint whose fingerprint differs from the live run's.
    pub config_fingerprint: String,
    /// Per-epoch training losses up to the cursor.
    pub losses: Vec<f64>,
    /// Per-epoch pre-clip gradient norms up to the cursor.
    pub grad_norms: Vec<f64>,
    /// Model weights.
    pub params: Vec<TensorEntry>,
    /// Adam first moments, name-aligned with `params` entries that have
    /// received gradients.
    pub opt_m: Vec<TensorEntry>,
    /// Adam second moments.
    pub opt_v: Vec<TensorEntry>,
    /// Early-stopping best-weights snapshot (empty when `best_acc` is
    /// `None`).
    pub best_params: Vec<TensorEntry>,
}

// ---------------------------------------------------------------------
// Little-endian byte plumbing.

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CkptError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| CkptError::Corrupt(format!("truncated while reading {what}")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self, what: &str) -> Result<u8, CkptError> {
        Ok(self.take(1, what)?[0])
    }
    fn u32(&mut self, what: &str) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self, what: &str) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }
    fn f64(&mut self, what: &str) -> Result<f64, CkptError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }
    fn str(&mut self, what: &str) -> Result<String, CkptError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CkptError::Corrupt(format!("{what} is not UTF-8")))
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------
// Section encode/decode.

/// A raw section: name + payload bytes, as stored on disk.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section name (`meta`, `history`, `params`, `adam.m`, `adam.v`,
    /// `best`).
    pub name: String,
    /// Payload bytes (already checksummed).
    pub payload: Vec<u8>,
}

fn encode_tensors(tensors: &[TensorEntry]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(tensors.len() as u32);
    for t in tensors {
        w.str(&t.name);
        w.u32(t.rows);
        w.u32(t.cols);
        for &v in &t.data {
            w.f64(v);
        }
    }
    w.buf
}

fn decode_tensors(payload: &[u8], section: &str) -> Result<Vec<TensorEntry>, CkptError> {
    let mut r = Reader::new(payload);
    let count = r.u32(section)? as usize;
    let mut out = Vec::with_capacity(count.min(4096));
    for i in 0..count {
        let what = format!("{section}[{i}]");
        let name = r.str(&what)?;
        let rows = r.u32(&what)?;
        let cols = r.u32(&what)?;
        let n = (rows as u64)
            .checked_mul(cols as u64)
            .filter(|&n| n * 8 <= MAX_SECTION_BYTES)
            .ok_or_else(|| CkptError::Corrupt(format!("{what}: absurd shape {rows}x{cols}")))?
            as usize;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f64(&what)?);
        }
        out.push(TensorEntry { name, rows, cols, data });
    }
    if !r.done() {
        return Err(CkptError::Corrupt(format!("{section}: trailing bytes")));
    }
    Ok(out)
}

impl TrainCheckpoint {
    /// Serialises to the on-disk byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = Writer::new();
        meta.u64(self.epoch);
        meta.u64(self.opt_step);
        meta.f64(self.lr);
        meta.u64(self.seed);
        meta.u64(self.vocab);
        meta.u64(self.explicit_dim);
        meta.u64(self.n_classes);
        meta.u64(self.since_best);
        meta.u64(self.lr_halvings);
        meta.u8(u8::from(self.best_acc.is_some()));
        meta.f64(self.best_acc.unwrap_or(0.0));
        meta.str(&self.config_fingerprint);

        let mut history = Writer::new();
        history.u32(self.losses.len() as u32);
        for &l in &self.losses {
            history.f64(l);
        }
        history.u32(self.grad_norms.len() as u32);
        for &g in &self.grad_norms {
            history.f64(g);
        }

        let mut sections = vec![
            Section { name: "meta".into(), payload: meta.buf },
            Section { name: "history".into(), payload: history.buf },
            Section { name: "params".into(), payload: encode_tensors(&self.params) },
            Section { name: "adam.m".into(), payload: encode_tensors(&self.opt_m) },
            Section { name: "adam.v".into(), payload: encode_tensors(&self.opt_v) },
        ];
        if self.best_acc.is_some() {
            sections.push(Section { name: "best".into(), payload: encode_tensors(&self.best_params) });
        }

        let mut w = Writer::new();
        w.bytes(&MAGIC);
        w.u32(VERSION);
        w.u32(sections.len() as u32);
        for s in &sections {
            w.str(&s.name);
            w.u64(s.payload.len() as u64);
            w.u32(crc32_parts(&[s.name.as_bytes(), &s.payload]));
            w.bytes(&s.payload);
        }
        w.buf
    }

    /// Parses and checksum-verifies the on-disk byte format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let sections = read_sections(bytes)?;
        let mut ckpt = TrainCheckpoint::default();
        let mut saw = std::collections::HashSet::new();
        for section in &sections {
            if !saw.insert(section.name.clone()) {
                return Err(CkptError::Corrupt(format!("duplicate section {:?}", section.name)));
            }
            match section.name.as_str() {
                "meta" => {
                    let mut r = Reader::new(&section.payload);
                    ckpt.epoch = r.u64("meta.epoch")?;
                    ckpt.opt_step = r.u64("meta.opt_step")?;
                    ckpt.lr = r.f64("meta.lr")?;
                    ckpt.seed = r.u64("meta.seed")?;
                    ckpt.vocab = r.u64("meta.vocab")?;
                    ckpt.explicit_dim = r.u64("meta.explicit_dim")?;
                    ckpt.n_classes = r.u64("meta.n_classes")?;
                    ckpt.since_best = r.u64("meta.since_best")?;
                    ckpt.lr_halvings = r.u64("meta.lr_halvings")?;
                    let has_best = r.u8("meta.best_flag")? != 0;
                    let best_acc = r.f64("meta.best_acc")?;
                    ckpt.best_acc = has_best.then_some(best_acc);
                    ckpt.config_fingerprint = r.str("meta.fingerprint")?;
                    if !r.done() {
                        return Err(CkptError::Corrupt("meta: trailing bytes".into()));
                    }
                }
                "history" => {
                    let mut r = Reader::new(&section.payload);
                    let n = r.u32("history.losses")? as usize;
                    ckpt.losses = (0..n)
                        .map(|_| r.f64("history.losses"))
                        .collect::<Result<_, _>>()?;
                    let m = r.u32("history.grad_norms")? as usize;
                    ckpt.grad_norms = (0..m)
                        .map(|_| r.f64("history.grad_norms"))
                        .collect::<Result<_, _>>()?;
                    if !r.done() {
                        return Err(CkptError::Corrupt("history: trailing bytes".into()));
                    }
                }
                "params" => ckpt.params = decode_tensors(&section.payload, "params")?,
                "adam.m" => ckpt.opt_m = decode_tensors(&section.payload, "adam.m")?,
                "adam.v" => ckpt.opt_v = decode_tensors(&section.payload, "adam.v")?,
                "best" => ckpt.best_params = decode_tensors(&section.payload, "best")?,
                // Unknown sections from a future minor revision are
                // skipped (their CRC was still verified).
                _ => {}
            }
        }
        if !saw.contains("meta") || !saw.contains("params") {
            return Err(CkptError::Corrupt("missing required sections (meta, params)".into()));
        }
        Ok(ckpt)
    }
}

/// Parses the header and section table, verifying every section CRC.
pub fn read_sections(bytes: &[u8]) -> Result<Vec<Section>, CkptError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(CkptError::Corrupt(format!("bad magic {magic:02x?}")));
    }
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(CkptError::Corrupt(format!("unsupported version {version}")));
    }
    let count = r.u32("section count")? as usize;
    let mut sections = Vec::with_capacity(count.min(64));
    for i in 0..count {
        let what = format!("section {i}");
        let name = r.str(&what)?;
        let len = r.u64(&what)?;
        if len > MAX_SECTION_BYTES {
            return Err(CkptError::Corrupt(format!("{what} ({name}): absurd length {len}")));
        }
        let stored_crc = r.u32(&what)?;
        let payload = r.take(len as usize, &what)?;
        let actual_crc = crc32_parts(&[name.as_bytes(), payload]);
        if actual_crc != stored_crc {
            return Err(CkptError::Corrupt(format!(
                "section {name:?}: checksum mismatch (stored {stored_crc:08x}, actual {actual_crc:08x})"
            )));
        }
        sections.push(Section { name, payload: payload.to_vec() });
    }
    if !r.done() {
        return Err(CkptError::Corrupt("trailing bytes after last section".into()));
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            epoch: 7,
            opt_step: 7,
            lr: 0.03,
            seed: 42,
            vocab: 6000,
            explicit_dim: 60,
            n_classes: 2,
            since_best: 3,
            lr_halvings: 1,
            best_acc: Some(0.8125),
            config_fingerprint: "cfg-v1".into(),
            losses: vec![1.5, 1.25, 1.0],
            grad_norms: vec![3.0, 2.5, 2.0],
            params: vec![
                TensorEntry::from_f32("head.w", 2, 3, &[1.0, -2.5, 0.5, f32::MIN_POSITIVE, 0.0, 3.25]),
                TensorEntry::from_f32("head.b", 1, 3, &[0.0, 1e-38, -1e30]),
            ],
            opt_m: vec![TensorEntry::from_f32("head.w", 2, 3, &[0.1; 6])],
            opt_v: vec![TensorEntry::from_f32("head.w", 2, 3, &[0.01; 6])],
            best_params: vec![TensorEntry::from_f32("head.w", 2, 3, &[9.0; 6])],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let ckpt = sample();
        let restored = TrainCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(restored, ckpt);
    }

    #[test]
    fn f32_widening_roundtrip_is_bit_exact() {
        let values: Vec<f32> =
            vec![0.0, -0.0, 1.0, f32::MIN_POSITIVE, f32::MAX, 1e-42 /* subnormal */, -3.75];
        let entry = TensorEntry::from_f32("t", 1, values.len(), &values);
        let back = entry.to_f32();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} did not survive the f64 round-trip");
        }
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let bytes = sample().to_bytes();
        // Flip one byte inside the last section's payload (the header
        // region would fail structurally; the payload must fail by CRC).
        let mut corrupt = bytes.clone();
        let target = corrupt.len() - 3;
        corrupt[target] ^= 0x40;
        let err = TrainCheckpoint::from_bytes(&corrupt).unwrap_err();
        assert!(matches!(err, CkptError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncated_tail_is_detected() {
        let bytes = sample().to_bytes();
        for keep in [0, 3, 8, bytes.len() / 2, bytes.len() - 1] {
            let err = TrainCheckpoint::from_bytes(&bytes[..keep]).unwrap_err();
            assert!(matches!(err, CkptError::Corrupt(_)), "keep={keep}: {err}");
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(TrainCheckpoint::from_bytes(&bytes).is_err());
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        let err = TrainCheckpoint::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn no_best_section_when_no_early_stopping() {
        let mut ckpt = sample();
        ckpt.best_acc = None;
        ckpt.best_params.clear();
        let sections = read_sections(&ckpt.to_bytes()).unwrap();
        assert!(sections.iter().all(|s| s.name != "best"));
        let restored = TrainCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(restored, ckpt);
    }
}

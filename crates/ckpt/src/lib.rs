//! `fd-ckpt` — durable, crash-safe binary checkpoints for FakeDetector
//! training and serving.
//!
//! Dependency-free (std only). Three layers:
//!
//! - [`mod@format`]: the versioned sectioned byte format
//!   ([`TrainCheckpoint`] ↔ bytes) with per-section CRC-32 and exact
//!   `f32`↔`f64` round-trips, so a resumed run is bitwise-identical to
//!   an uninterrupted one.
//! - [`store`]: a rotation-managed directory ([`CheckpointStore`]) with
//!   temp-file + fsync + atomic-rename writes and corrupt-fallback
//!   loading.
//! - [`fault`]: deterministic `FD_FAULT` fault injection (io-error,
//!   torn-write, slow-batch, panic-batch, kill-after-ckpt) driving the
//!   crash/recovery test suite.
//!
//! The [`inspect`] helper backs `fdctl ckpt inspect`: it reports the
//! header, epoch cursor, and each section's stored vs actual checksum
//! without requiring the whole file to be valid.

pub mod crc32;
pub mod fault;
pub mod format;
pub mod store;

pub use format::{CkptError, Section, TensorEntry, TrainCheckpoint, MAGIC, VERSION};
pub use store::{load_file, CheckpointStore, Loaded};

/// Checksum status of one section as seen by [`inspect`].
#[derive(Debug, Clone)]
pub struct SectionReport {
    /// Section name.
    pub name: String,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 stored in the file.
    pub stored_crc: u32,
    /// CRC-32 recomputed over the payload actually present.
    pub actual_crc: u32,
    /// `stored_crc == actual_crc` and the payload was fully present.
    pub valid: bool,
}

/// What [`inspect`] learned about a checkpoint file.
#[derive(Debug, Clone)]
pub struct InspectReport {
    /// Total file length in bytes.
    pub file_len: u64,
    /// Format version from the header, if the header parsed.
    pub version: Option<u32>,
    /// Per-section checksum results (best effort on damaged files).
    pub sections: Vec<SectionReport>,
    /// Decoded metadata when the file is fully valid.
    pub meta: Option<InspectMeta>,
    /// `None` when the file is fully valid, otherwise why it is not.
    pub error: Option<String>,
}

/// Cursor/meta summary of a valid checkpoint.
#[derive(Debug, Clone)]
pub struct InspectMeta {
    /// Epochs completed (resume cursor).
    pub epoch: u64,
    /// Adam step count.
    pub opt_step: u64,
    /// Learning rate in effect.
    pub lr: f64,
    /// Experiment seed.
    pub seed: u64,
    /// Divergence-guard LR halvings applied.
    pub lr_halvings: u64,
    /// Best validation accuracy, when early stopping was active.
    pub best_acc: Option<f64>,
    /// Parameter tensor count.
    pub n_params: usize,
    /// Total parameter element count.
    pub n_elements: usize,
    /// Config fingerprint recorded at save time.
    pub config_fingerprint: String,
}

impl InspectReport {
    /// Whether every section verified and the checkpoint decoded.
    pub fn valid(&self) -> bool {
        self.error.is_none()
    }

    /// Renders the operator-facing text used by `fdctl ckpt inspect`.
    pub fn render(&self, path: &std::path::Path) -> String {
        let mut out = String::new();
        use std::fmt::Write;
        let _ = writeln!(out, "checkpoint: {}", path.display());
        let _ = writeln!(out, "  size:     {} bytes", self.file_len);
        match self.version {
            Some(v) => {
                let _ = writeln!(out, "  format:   FDCK v{v}");
            }
            None => {
                let _ = writeln!(out, "  format:   unreadable header");
            }
        }
        if let Some(meta) = &self.meta {
            let _ = writeln!(out, "  epoch:    {} (resume cursor)", meta.epoch);
            let _ = writeln!(out, "  opt step: {}", meta.opt_step);
            let _ = writeln!(out, "  lr:       {} ({} halvings)", meta.lr, meta.lr_halvings);
            let _ = writeln!(out, "  seed:     {}", meta.seed);
            match meta.best_acc {
                Some(acc) => {
                    let _ = writeln!(out, "  best acc: {acc:.4}");
                }
                None => {
                    let _ = writeln!(out, "  best acc: n/a (early stopping off)");
                }
            }
            let _ = writeln!(out, "  params:   {} tensors, {} elements", meta.n_params, meta.n_elements);
            let _ = writeln!(out, "  config:   {}", meta.config_fingerprint);
        }
        let _ = writeln!(out, "  sections:");
        for s in &self.sections {
            let status = if s.valid { "ok" } else { "CORRUPT" };
            let _ = writeln!(
                out,
                "    {:<10} {:>10} bytes  crc32 {:08x} (actual {:08x})  {status}",
                s.name, s.len, s.stored_crc, s.actual_crc
            );
        }
        match &self.error {
            None => {
                let _ = writeln!(out, "  status:   VALID");
            }
            Some(why) => {
                let _ = writeln!(out, "  status:   INVALID — {why}");
            }
        }
        out
    }
}

/// Examines a checkpoint file, tolerating damage: even when the file
/// fails verification, the report carries whatever header and section
/// information could be recovered so an operator can see *where* it
/// broke.
pub fn inspect(path: &std::path::Path) -> Result<InspectReport, CkptError> {
    let bytes = std::fs::read(path)?;
    let mut report = InspectReport {
        file_len: bytes.len() as u64,
        version: None,
        sections: Vec::new(),
        meta: None,
        error: None,
    };

    // Walk the container by hand so a bad section doesn't hide the
    // good ones before it.
    if bytes.len() < 12 || bytes[..4] != MAGIC {
        report.error = Some("bad magic (not an FDCK checkpoint)".into());
        return Ok(report);
    }
    report.version = Some(u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")));
    let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let mut pos = 12usize;
    let mut structural_error: Option<String> = None;
    for i in 0..count {
        let header = (|| -> Option<(String, u64, u32, usize)> {
            let name_len = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
            let name_end = pos.checked_add(4)?.checked_add(name_len)?;
            let name = String::from_utf8(bytes.get(pos + 4..name_end)?.to_vec()).ok()?;
            let len = u64::from_le_bytes(bytes.get(name_end..name_end + 8)?.try_into().ok()?);
            let crc = u32::from_le_bytes(bytes.get(name_end + 8..name_end + 12)?.try_into().ok()?);
            Some((name, len, crc, name_end + 12))
        })();
        let Some((name, len, stored_crc, payload_start)) = header else {
            structural_error = Some(format!("truncated in section {i} header"));
            break;
        };
        let payload_end = payload_start.saturating_add(len as usize);
        let payload = bytes.get(payload_start..payload_end).unwrap_or(&bytes[payload_start.min(bytes.len())..]);
        let actual_crc = crc32::crc32_parts(&[name.as_bytes(), payload]);
        let complete = payload.len() as u64 == len;
        report.sections.push(SectionReport {
            name,
            len,
            stored_crc,
            actual_crc,
            valid: complete && actual_crc == stored_crc,
        });
        if !complete {
            structural_error = Some(format!("truncated in section {i} payload"));
            break;
        }
        pos = payload_end;
    }

    // Authoritative validity comes from the real decoder.
    match TrainCheckpoint::from_bytes(&bytes) {
        Ok(ckpt) => {
            report.meta = Some(InspectMeta {
                epoch: ckpt.epoch,
                opt_step: ckpt.opt_step,
                lr: ckpt.lr,
                seed: ckpt.seed,
                lr_halvings: ckpt.lr_halvings,
                best_acc: ckpt.best_acc,
                n_params: ckpt.params.len(),
                n_elements: ckpt.params.iter().map(|t| t.data.len()).sum(),
                config_fingerprint: ckpt.config_fingerprint,
            });
        }
        Err(why) => {
            report.error = Some(structural_error.unwrap_or_else(|| why.to_string()));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            epoch: 12,
            opt_step: 12,
            lr: 0.015,
            seed: 9,
            lr_halvings: 1,
            best_acc: Some(0.75),
            config_fingerprint: "fp-test".into(),
            params: vec![TensorEntry::from_f32("w", 2, 2, &[1.0, 2.0, 3.0, 4.0])],
            best_params: vec![TensorEntry::from_f32("w", 2, 2, &[1.0, 2.0, 3.0, 4.0])],
            ..TrainCheckpoint::default()
        }
    }

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fd-ckpt-inspect-{tag}-{}.fdck", std::process::id()))
    }

    #[test]
    fn inspect_valid_file() {
        let path = tmpfile("valid");
        std::fs::write(&path, sample().to_bytes()).unwrap();
        let report = inspect(&path).unwrap();
        assert!(report.valid(), "{:?}", report.error);
        assert_eq!(report.version, Some(VERSION));
        let meta = report.meta.as_ref().unwrap();
        assert_eq!(meta.epoch, 12);
        assert_eq!(meta.n_params, 1);
        assert_eq!(meta.n_elements, 4);
        assert!(report.sections.iter().all(|s| s.valid));
        let rendered = report.render(&path);
        assert!(rendered.contains("VALID"));
        assert!(rendered.contains("epoch:    12"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn inspect_flipped_byte_pinpoints_section() {
        let path = tmpfile("flip");
        let mut bytes = sample().to_bytes();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let report = inspect(&path).unwrap();
        assert!(!report.valid());
        let bad: Vec<_> = report.sections.iter().filter(|s| !s.valid).collect();
        assert_eq!(bad.len(), 1, "exactly the damaged section should flag");
        assert!(report.render(&path).contains("INVALID"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn inspect_truncated_file_reports_partial_sections() {
        let path = tmpfile("trunc");
        let bytes = sample().to_bytes();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let report = inspect(&path).unwrap();
        assert!(!report.valid());
        assert!(report.error.as_ref().unwrap().contains("truncated"), "{:?}", report.error);
        assert!(!report.sections.is_empty(), "leading sections should still be listed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn inspect_non_checkpoint_file() {
        let path = tmpfile("garbage");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let report = inspect(&path).unwrap();
        assert!(!report.valid());
        assert!(report.error.as_ref().unwrap().contains("magic"));
        let _ = std::fs::remove_file(&path);
    }
}

//! CRC-32 (IEEE 802.3, the `zlib`/`gzip` polynomial) over byte slices.
//!
//! Checkpoint sections each carry their own checksum so a torn write,
//! a flipped bit, or a truncated tail is detected at load time instead
//! of silently poisoning the restored weights. The table-driven
//! implementation processes one byte per lookup — checkpoint files are
//! a few megabytes at most, so throughput is not a concern.

/// Reflected CRC-32 polynomial (0xEDB88320 = bit-reversed 0x04C11DB7).
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (initial value 0xFFFFFFFF, final XOR 0xFFFFFFFF —
/// the standard parameterisation, so values match `cksum -o 3`, zlib,
/// and every other IEEE CRC-32 tool an operator might reach for).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_parts(&[bytes])
}

/// CRC-32 over the concatenation of `parts`, without materialising the
/// concatenated buffer. `crc32_parts(&[a, b]) == crc32(a ++ b)`.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer tests against the standard IEEE CRC-32 vectors.
    #[test]
    fn known_answers() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 1024];
        let clean = crc32(&data);
        for byte in [0usize, 511, 1023] {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at byte {byte} bit {bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn parts_match_concatenation() {
        let a = b"hello ".as_slice();
        let b = b"world".as_slice();
        assert_eq!(crc32_parts(&[a, b]), crc32(b"hello world"));
        assert_eq!(crc32_parts(&[a, b"", b]), crc32(b"hello world"));
        assert_eq!(crc32_parts(&[]), crc32(b""));
    }

    #[test]
    fn truncation_changes_checksum() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let full = crc32(&data);
        assert_ne!(crc32(&data[..data.len() - 1]), full);
        assert_ne!(crc32(&data[..1]), full);
    }
}

//! The on-disk checkpoint store: crash-safe writes, rotation, and
//! corrupt-fallback loading.
//!
//! Files are named `ckpt-NNNNNNNN.fdck` (zero-padded epoch cursor).
//! A save follows the classic durable-write protocol:
//!
//! 1. serialise to `ckpt-NNNNNNNN.fdck.tmp`
//! 2. `fsync` the temp file
//! 3. atomically `rename` it over the final name
//! 4. `fsync` the directory so the rename itself is durable
//!
//! A crash at any point leaves either the previous state or the new
//! file complete — never a half-written `ckpt-*.fdck` under the final
//! name. Even if the filesystem reorders writes (or `FD_FAULT`
//! injects a torn write), the per-section CRC catches the damage at
//! load time and [`CheckpointStore::load_latest`] falls back to the
//! newest older file that verifies.

use crate::fault;
use crate::format::{CkptError, TrainCheckpoint};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Extension used by checkpoint files.
pub const EXTENSION: &str = "fdck";

/// A rotation-managed directory of checkpoint files.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

/// Outcome of [`CheckpointStore::load_latest`].
#[derive(Debug)]
pub struct Loaded {
    /// The newest checkpoint that decoded and checksum-verified.
    pub checkpoint: TrainCheckpoint,
    /// File it came from.
    pub path: PathBuf,
    /// Newer files that were skipped as corrupt/unreadable, newest
    /// first, with the reason each was rejected.
    pub skipped: Vec<(PathBuf, String)>,
}

impl CheckpointStore {
    /// Opens (creating if needed) `dir` as a checkpoint store keeping
    /// the newest `keep` files after each save. `keep` is clamped to
    /// at least 2 so a corrupt latest always has a fallback.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, CkptError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, keep: keep.max(2) })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File path for a given epoch cursor.
    pub fn path_for_epoch(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{epoch:08}.{EXTENSION}"))
    }

    /// Durably writes `ckpt` (named by its epoch cursor), then rotates
    /// old files down to the keep limit. Returns the final path.
    pub fn save(&self, ckpt: &TrainCheckpoint) -> Result<PathBuf, CkptError> {
        let bytes = ckpt.to_bytes();
        let final_path = self.path_for_epoch(ckpt.epoch);
        let tmp_path = final_path.with_extension(format!("{EXTENSION}.tmp"));

        if let Some(err) = fault::io_error("checkpoint save") {
            return Err(err.into());
        }
        // FD_FAULT torn-write: persist a truncated prefix but complete
        // the rename, simulating power loss mid-write on a filesystem
        // that committed the rename first. The CRC layer must refuse
        // this file and load_latest must fall back.
        let write_bytes = if fault::torn_write() { &bytes[..bytes.len() / 2] } else { &bytes[..] };

        {
            let mut tmp = std::fs::File::create(&tmp_path)?;
            tmp.write_all(write_bytes)?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        // Make the rename itself durable: fsync the directory entry.
        // Some platforms refuse to fsync a directory handle; that is a
        // durability gap, not corruption, so ignore the failure.
        if let Ok(dirfd) = std::fs::File::open(&self.dir) {
            let _ = dirfd.sync_all();
        }

        self.rotate()?;
        Ok(final_path)
    }

    /// Removes all but the newest `keep` checkpoint files. Stale
    /// `.tmp` files from interrupted saves are always removed.
    fn rotate(&self) -> Result<(), CkptError> {
        let mut files = self.list()?;
        // list() is newest-first.
        for (_, path) in files.drain(..).skip(self.keep) {
            let _ = std::fs::remove_file(path);
        }
        for entry in std::fs::read_dir(&self.dir)?.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
                let _ = std::fs::remove_file(path);
            }
        }
        Ok(())
    }

    /// Checkpoint files present, as `(epoch, path)` newest-first.
    pub fn list(&self) -> Result<Vec<(u64, PathBuf)>, CkptError> {
        let mut files = Vec::new();
        for entry in std::fs::read_dir(&self.dir)?.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXTENSION) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else { continue };
            let Some(num) = stem.strip_prefix("ckpt-") else { continue };
            let Ok(epoch) = num.parse::<u64>() else { continue };
            files.push((epoch, path));
        }
        files.sort_by_key(|b| std::cmp::Reverse(b.0));
        Ok(files)
    }

    /// Loads the newest checkpoint that passes every checksum, walking
    /// backwards past corrupt or unreadable files. `Ok(None)` means the
    /// store holds no checkpoint at all; `Err` means files exist but
    /// none verified.
    pub fn load_latest(&self) -> Result<Option<Loaded>, CkptError> {
        let files = self.list()?;
        if files.is_empty() {
            return Ok(None);
        }
        let mut skipped = Vec::new();
        for (_, path) in files {
            match load_file(&path) {
                Ok(checkpoint) => {
                    return Ok(Some(Loaded { checkpoint, path, skipped }));
                }
                Err(why) => skipped.push((path, why.to_string())),
            }
        }
        let detail = skipped
            .iter()
            .map(|(p, why)| format!("{}: {why}", p.display()))
            .collect::<Vec<_>>()
            .join("; ");
        Err(CkptError::Corrupt(format!("no valid checkpoint in store ({detail})")))
    }
}

/// Reads and fully verifies one checkpoint file.
pub fn load_file(path: &Path) -> Result<TrainCheckpoint, CkptError> {
    if let Some(err) = fault::io_error("checkpoint load") {
        return Err(err.into());
    }
    let bytes = std::fs::read(path)?;
    TrainCheckpoint::from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSpec;
    use crate::format::TensorEntry;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The fault spec is process-global; tests that install one must
    /// not interleave.
    fn fault_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fd-ckpt-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ckpt(epoch: u64) -> TrainCheckpoint {
        TrainCheckpoint {
            epoch,
            opt_step: epoch,
            lr: 0.03,
            seed: 1,
            config_fingerprint: "fp".into(),
            params: vec![TensorEntry::from_f32("w", 1, 2, &[epoch as f32, 1.0])],
            ..TrainCheckpoint::default()
        }
    }

    #[test]
    fn save_load_and_rotation() {
        let dir = tmpdir("rotate");
        let store = CheckpointStore::open(&dir, 3).unwrap();
        for epoch in 1..=6 {
            store.save(&ckpt(epoch)).unwrap();
        }
        let files = store.list().unwrap();
        assert_eq!(files.iter().map(|(e, _)| *e).collect::<Vec<_>>(), vec![6, 5, 4]);
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.checkpoint.epoch, 6);
        assert!(loaded.skipped.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_good() {
        let dir = tmpdir("fallback");
        let store = CheckpointStore::open(&dir, 4).unwrap();
        store.save(&ckpt(1)).unwrap();
        store.save(&ckpt(2)).unwrap();
        let latest = store.save(&ckpt(3)).unwrap();

        // Flip a byte in the newest file's tail (inside a payload).
        let mut bytes = std::fs::read(&latest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&latest, &bytes).unwrap();

        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.checkpoint.epoch, 2);
        assert_eq!(loaded.skipped.len(), 1);
        assert!(loaded.skipped[0].1.contains("checksum"), "{}", loaded.skipped[0].1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_latest_falls_back() {
        let dir = tmpdir("truncate");
        let store = CheckpointStore::open(&dir, 4).unwrap();
        store.save(&ckpt(1)).unwrap();
        let latest = store.save(&ckpt(2)).unwrap();
        let bytes = std::fs::read(&latest).unwrap();
        std::fs::write(&latest, &bytes[..bytes.len() / 3]).unwrap();

        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.checkpoint.epoch, 1);
        assert_eq!(loaded.skipped.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_corrupt_is_an_error_and_empty_is_none() {
        let dir = tmpdir("allbad");
        let store = CheckpointStore::open(&dir, 2).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        let path = store.save(&ckpt(1)).unwrap();
        std::fs::write(&path, b"FDCKgarbage").unwrap();
        let err = store.load_latest().unwrap_err();
        assert!(matches!(err, CkptError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_write_is_caught_by_checksum() {
        let _guard = fault_lock();
        let dir = tmpdir("torn");
        let store = CheckpointStore::open(&dir, 4).unwrap();
        store.save(&ckpt(1)).unwrap();

        // Second save is torn: half the bytes land, rename completes.
        fault::set_spec(Some(FaultSpec { torn_write_nth: Some(1), ..FaultSpec::default() }));
        store.save(&ckpt(2)).unwrap();
        fault::set_spec(None);

        assert!(store.path_for_epoch(2).exists(), "torn file should exist under final name");
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.checkpoint.epoch, 1, "must fall back past the torn file");
        assert_eq!(loaded.skipped.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_error_surfaces_as_io() {
        let _guard = fault_lock();
        let dir = tmpdir("ioerr");
        let store = CheckpointStore::open(&dir, 2).unwrap();
        fault::set_spec(Some(FaultSpec { io_error_nth: Some(1), ..FaultSpec::default() }));
        let err = store.save(&ckpt(1)).unwrap_err();
        fault::set_spec(None);
        assert!(matches!(err, CkptError::Io(_)), "{err}");
        assert!(err.to_string().contains("FD_FAULT"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_tmp_is_cleaned_up_and_ignored() {
        let dir = tmpdir("tmpclean");
        let store = CheckpointStore::open(&dir, 2).unwrap();
        // A stale temp file from a crashed writer.
        std::fs::write(dir.join("ckpt-00000009.fdck.tmp"), b"partial").unwrap();
        store.save(&ckpt(1)).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stale tmp files must be swept");
        assert_eq!(store.load_latest().unwrap().unwrap().checkpoint.epoch, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn saved_bytes_are_deterministic() {
        // Byte-for-byte identical files for identical state — the CI
        // crash-recovery job diffs control vs resumed checkpoints.
        let a = ckpt(5).to_bytes();
        let b = ckpt(5).to_bytes();
        assert_eq!(a, b);
    }
}

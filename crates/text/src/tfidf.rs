//! TF-IDF weighting over a [`WordSet`] — an alternative to raw counts
//! for the explicit features. The paper uses appearance counts; TF-IDF
//! is provided as a documented extension for the ablation harness and
//! downstream users.

use crate::{bow_features, WordSet};
use fd_tensor::Matrix;

/// Smoothed inverse-document-frequency weights for a word set, fitted on
/// a training corpus: `idf = ln((N + 1) / (df + 1)) + 1`.
#[derive(Debug, Clone)]
pub struct TfIdf {
    idf: Vec<f32>,
    n_documents: usize,
}

impl TfIdf {
    /// Fits document frequencies of each word-set entry over `documents`.
    pub fn fit(documents: &[Vec<String>], word_set: &WordSet) -> Self {
        let mut df = vec![0u32; word_set.len()];
        for doc in documents {
            let mut seen = vec![false; word_set.len()];
            for token in doc {
                if let Some(pos) = word_set.position(token) {
                    if !seen[pos] {
                        seen[pos] = true;
                        df[pos] += 1;
                    }
                }
            }
        }
        let n = documents.len();
        let idf = df
            .into_iter()
            .map(|d| ((n as f32 + 1.0) / (d as f32 + 1.0)).ln() + 1.0)
            .collect();
        Self { idf, n_documents: n }
    }

    /// TF-IDF features for one document: raw counts reweighted by the
    /// fitted IDF. Same shape as [`bow_features`].
    pub fn transform(&self, tokens: &[String], word_set: &WordSet) -> Matrix {
        assert_eq!(
            word_set.len(),
            self.idf.len(),
            "TfIdf::transform: word set size {} != fitted size {}",
            word_set.len(),
            self.idf.len()
        );
        let mut features = bow_features(tokens, word_set);
        for (v, &w) in features.as_mut_slice().iter_mut().zip(&self.idf) {
            *v *= w;
        }
        features
    }

    /// The IDF weight of feature position `pos`.
    pub fn idf(&self, pos: usize) -> f32 {
        self.idf[pos]
    }

    /// Number of documents the weights were fitted on.
    pub fn n_documents(&self) -> usize {
        self.n_documents
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn rare_words_weigh_more_than_common() {
        let ws = WordSet::from_words(["common", "rare"].map(String::from));
        let docs = vec![
            toks("common rare"),
            toks("common"),
            toks("common"),
            toks("common"),
        ];
        let tfidf = TfIdf::fit(&docs, &ws);
        assert!(
            tfidf.idf(1) > tfidf.idf(0),
            "rare idf {} should exceed common idf {}",
            tfidf.idf(1),
            tfidf.idf(0)
        );
    }

    #[test]
    fn transform_multiplies_counts_by_idf() {
        let ws = WordSet::from_words(["alpha", "beta"].map(String::from));
        let docs = vec![toks("alpha"), toks("alpha beta")];
        let tfidf = TfIdf::fit(&docs, &ws);
        let f = tfidf.transform(&toks("alpha alpha beta"), &ws);
        assert!((f[(0, 0)] - 2.0 * tfidf.idf(0)).abs() < 1e-6);
        assert!((f[(0, 1)] - tfidf.idf(1)).abs() < 1e-6);
    }

    #[test]
    fn unseen_word_gets_maximum_idf() {
        let ws = WordSet::from_words(["seen", "never"].map(String::from));
        let docs = vec![toks("seen"); 9];
        let tfidf = TfIdf::fit(&docs, &ws);
        let max_idf = ((9.0f32 + 1.0) / 1.0).ln() + 1.0;
        assert!((tfidf.idf(1) - max_idf).abs() < 1e-6);
        assert_eq!(tfidf.n_documents(), 9);
    }

    #[test]
    fn repeated_word_in_one_doc_counts_once_for_df() {
        let ws = WordSet::from_words(["spam"].map(String::from));
        let a = TfIdf::fit(&[toks("spam spam spam")], &ws);
        let b = TfIdf::fit(&[toks("spam")], &ws);
        assert_eq!(a.idf(0), b.idf(0));
    }

    #[test]
    fn empty_corpus_is_well_defined() {
        let ws = WordSet::from_words(["x"].map(String::from));
        let tfidf = TfIdf::fit(&[], &ws);
        assert!(tfidf.idf(0).is_finite());
        let f = tfidf.transform(&toks("x"), &ws);
        assert!(f[(0, 0)].is_finite());
    }

    #[test]
    #[should_panic(expected = "word set size")]
    fn transform_checks_word_set_size() {
        let ws1 = WordSet::from_words(["a"].map(String::from));
        let ws2 = WordSet::from_words(["a", "b"].map(String::from));
        let tfidf = TfIdf::fit(&[toks("a")], &ws1);
        let _ = tfidf.transform(&toks("a"), &ws2);
    }
}

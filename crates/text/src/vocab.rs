//! Corpus vocabulary with reserved PAD/UNK ids.

use crate::{RESERVED_IDS, UNK_ID};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A frequency-pruned word↔id mapping.
///
/// Ids `0` and `1` are reserved for PAD and UNK; real words start at
/// [`RESERVED_IDS`]. Words are ordered by descending corpus frequency
/// (ties broken alphabetically) so truncation keeps the most common
/// words — the property the paper's explicit features rely on.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Vocab {
    words: Vec<String>,
    counts: Vec<u64>,
    #[serde(skip)]
    index: HashMap<String, usize>,
    total_tokens: u64,
    documents: u64,
}

impl Vocab {
    /// Builds a vocabulary from tokenised documents.
    ///
    /// * `min_count` — drop words seen fewer times across the corpus;
    /// * `max_size` — keep at most this many words (most frequent first).
    pub fn build<I, D>(documents: I, min_count: u64, max_size: usize) -> Self
    where
        I: IntoIterator<Item = D>,
        D: IntoIterator<Item = String>,
    {
        let mut freq: HashMap<String, u64> = HashMap::new();
        let mut total_tokens = 0u64;
        let mut n_docs = 0u64;
        for doc in documents {
            n_docs += 1;
            for token in doc {
                total_tokens += 1;
                *freq.entry(token).or_insert(0) += 1;
            }
        }
        let mut entries: Vec<(String, u64)> =
            freq.into_iter().filter(|&(_, c)| c >= min_count).collect();
        // Descending frequency; alphabetical within ties keeps the build
        // deterministic across hash seeds.
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(max_size);

        let mut v = Vocab {
            words: entries.iter().map(|(w, _)| w.clone()).collect(),
            counts: entries.iter().map(|&(_, c)| c).collect(),
            index: HashMap::new(),
            total_tokens,
            documents: n_docs,
        };
        v.rebuild_index();
        v
    }

    fn rebuild_index(&mut self) {
        self.index = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i + RESERVED_IDS))
            .collect();
    }

    /// Token id of `word`, if in vocabulary. PAD/UNK are not looked up
    /// this way.
    pub fn id(&self, word: &str) -> Option<usize> {
        self.index.get(word).copied()
    }

    /// Token id of `word`, or [`UNK_ID`].
    pub fn id_or_unk(&self, word: &str) -> usize {
        self.id(word).unwrap_or(UNK_ID)
    }

    /// The word behind a token id (`None` for PAD/UNK/out-of-range).
    pub fn word(&self, id: usize) -> Option<&str> {
        if id < RESERVED_IDS {
            return None;
        }
        self.words.get(id - RESERVED_IDS).map(String::as_str)
    }

    /// Corpus frequency of a token id (0 for PAD/UNK).
    pub fn count(&self, id: usize) -> u64 {
        if id < RESERVED_IDS {
            return 0;
        }
        self.counts.get(id - RESERVED_IDS).copied().unwrap_or(0)
    }

    /// Number of real words (excludes PAD/UNK).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no real words are present.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total id space including the reserved ids — the embedding-table
    /// height models should allocate.
    pub fn id_space(&self) -> usize {
        self.words.len() + RESERVED_IDS
    }

    /// Total tokens observed while building (before pruning).
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Number of documents observed while building.
    pub fn documents(&self) -> u64 {
        self.documents
    }

    /// Words in rank order (most frequent first) with their counts.
    pub fn iter_ranked(&self) -> impl Iterator<Item = (&str, u64)> {
        self.words.iter().map(String::as_str).zip(self.counts.iter().copied())
    }

    /// Restores the lookup index after deserialisation.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut v: Vocab = serde_json::from_str(json)?;
        v.rebuild_index();
        Ok(v)
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Vocab serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tokenizer, PAD_ID};

    fn docs(texts: &[&str]) -> Vec<Vec<String>> {
        let t = Tokenizer::default();
        texts.iter().map(|s| t.tokenize(s)).collect()
    }

    #[test]
    fn build_orders_by_frequency() {
        let v = Vocab::build(docs(&["tax tax tax economy economy health"]), 1, 100);
        let ranked: Vec<&str> = v.iter_ranked().map(|(w, _)| w).collect();
        assert_eq!(ranked, vec!["tax", "economy", "health"]);
        assert_eq!(v.count(v.id("tax").unwrap()), 3);
    }

    #[test]
    fn ids_start_after_reserved() {
        let v = Vocab::build(docs(&["alpha beta"]), 1, 10);
        let a = v.id("alpha").unwrap();
        let b = v.id("beta").unwrap();
        assert!(a >= RESERVED_IDS && b >= RESERVED_IDS);
        assert_ne!(a, b);
        assert_eq!(v.id_space(), 4);
    }

    #[test]
    fn unknown_maps_to_unk() {
        let v = Vocab::build(docs(&["alpha"]), 1, 10);
        assert_eq!(v.id_or_unk("missing"), UNK_ID);
        assert_eq!(v.id("missing"), None);
        assert_eq!(v.word(PAD_ID), None);
        assert_eq!(v.word(UNK_ID), None);
    }

    #[test]
    fn min_count_prunes_rare_words() {
        let v = Vocab::build(docs(&["common common rare"]), 2, 10);
        assert!(v.id("common").is_some());
        assert!(v.id("rare").is_none());
    }

    #[test]
    fn max_size_keeps_most_frequent() {
        let v = Vocab::build(docs(&["one one one two two three"]), 1, 2);
        assert_eq!(v.len(), 2);
        assert!(v.id("one").is_some());
        assert!(v.id("two").is_some());
        assert!(v.id("three").is_none());
    }

    #[test]
    fn word_id_roundtrip() {
        let v = Vocab::build(docs(&["president economy gun hoax"]), 1, 100);
        for (w, _) in v.iter_ranked() {
            let id = v.id(w).unwrap();
            assert_eq!(v.word(id), Some(w));
        }
    }

    #[test]
    fn tie_break_is_alphabetical_and_deterministic() {
        let v1 = Vocab::build(docs(&["zeta alpha mid"]), 1, 100);
        let v2 = Vocab::build(docs(&["zeta alpha mid"]), 1, 100);
        let r1: Vec<&str> = v1.iter_ranked().map(|(w, _)| w).collect();
        let r2: Vec<&str> = v2.iter_ranked().map(|(w, _)| w).collect();
        assert_eq!(r1, r2);
        assert_eq!(r1, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn corpus_stats_recorded() {
        let v = Vocab::build(docs(&["tax economy", "tax health"]), 1, 100);
        assert_eq!(v.documents(), 2);
        assert_eq!(v.total_tokens(), 4);
    }

    #[test]
    fn json_roundtrip_restores_index() {
        let v = Vocab::build(docs(&["tax economy health"]), 1, 100);
        let back = Vocab::from_json(&v.to_json()).unwrap();
        assert_eq!(back.id("economy"), v.id("economy"));
        assert_eq!(back.len(), v.len());
    }

    #[test]
    fn empty_corpus_is_empty_vocab() {
        let v = Vocab::build(Vec::<Vec<String>>::new(), 1, 10);
        assert!(v.is_empty());
        assert_eq!(v.id_space(), RESERVED_IDS);
    }
}

//! Discriminative word-set extraction — the paper's pre-extracted
//! `W_n`, `W_u`, `W_s` used for the explicit features.
//!
//! Section 4.1.1 of the paper selects, per node type, the words whose
//! presence correlates most strongly with the credibility label. We score
//! candidate words by the χ² statistic of the word-presence ×
//! positive/negative-label contingency table and keep the top `d`.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// χ² score of each word against a binary document labelling.
///
/// `documents` are tokenised texts, `positive` flags each document.
/// Returns `(word, score)` sorted by descending score (alphabetical on
/// ties, so extraction is deterministic).
pub fn chi_squared_scores(
    documents: &[Vec<String>],
    positive: &[bool],
) -> Vec<(String, f64)> {
    assert_eq!(
        documents.len(),
        positive.len(),
        "chi_squared_scores: {} documents vs {} labels",
        documents.len(),
        positive.len()
    );
    let n = documents.len() as f64;
    if documents.is_empty() {
        return Vec::new();
    }
    let total_pos = positive.iter().filter(|&&p| p).count() as f64;
    let total_neg = n - total_pos;

    // Document frequency of each word, split by label.
    let mut df_pos: HashMap<&str, f64> = HashMap::new();
    let mut df_neg: HashMap<&str, f64> = HashMap::new();
    for (doc, &is_pos) in documents.iter().zip(positive) {
        let mut seen: HashSet<&str> = HashSet::new();
        for w in doc {
            if seen.insert(w.as_str()) {
                let slot = if is_pos { &mut df_pos } else { &mut df_neg };
                *slot.entry(w.as_str()).or_insert(0.0) += 1.0;
            }
        }
    }

    let mut words: HashSet<&str> = df_pos.keys().copied().collect();
    words.extend(df_neg.keys().copied());

    let mut scored: Vec<(String, f64)> = words
        .into_iter()
        .map(|w| {
            // 2x2 contingency: word present/absent × label pos/neg.
            let a = df_pos.get(w).copied().unwrap_or(0.0); // present, pos
            let b = df_neg.get(w).copied().unwrap_or(0.0); // present, neg
            let c = total_pos - a; // absent, pos
            let d = total_neg - b; // absent, neg
            let denom = (a + b) * (c + d) * (a + c) * (b + d);
            let chi2 = if denom == 0.0 {
                0.0
            } else {
                let det = a * d - b * c;
                n * det * det / denom
            };
            (w.to_string(), chi2)
        })
        .collect();
    scored.sort_by(|x, y| {
        y.1.partial_cmp(&x.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.0.cmp(&y.0))
    });
    scored
}

/// A fixed, ordered set of discriminative words with dense feature
/// positions — the explicit feature extractor's codebook.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct WordSet {
    words: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl WordSet {
    /// Selects the top-`d` χ²-scored words from a labelled corpus.
    pub fn extract(documents: &[Vec<String>], positive: &[bool], d: usize) -> Self {
        let scored = chi_squared_scores(documents, positive);
        Self::from_words(scored.into_iter().take(d).map(|(w, _)| w))
    }

    /// Builds a word set from an explicit word list (deduplicating while
    /// keeping first occurrence order).
    pub fn from_words(words: impl IntoIterator<Item = String>) -> Self {
        let mut seen = HashSet::new();
        let words: Vec<String> = words
            .into_iter()
            .filter(|w| seen.insert(w.clone()))
            .collect();
        let index = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        Self { words, index }
    }

    /// Feature position of `word` in this set.
    pub fn position(&self, word: &str) -> Option<usize> {
        self.index.get(word).copied()
    }

    /// Number of words (= explicit feature dimensionality `d`).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The words in feature order.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Restores the index after deserialisation.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut ws: WordSet = serde_json::from_str(json)?;
        ws.index = ws
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        Ok(ws)
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("WordSet serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn chi2_ranks_perfectly_separating_word_first() {
        let docs = vec![
            toks("tax income growth"),
            toks("tax jobs plan"),
            toks("hoax conspiracy lie"),
            toks("hoax fraud claim"),
        ];
        let labels = vec![true, true, false, false];
        let scored = chi_squared_scores(&docs, &labels);
        let top: Vec<&str> = scored.iter().take(2).map(|(w, _)| w.as_str()).collect();
        assert!(top.contains(&"tax"), "perfect separators should lead: {top:?}");
        assert!(top.contains(&"hoax"));
    }

    #[test]
    fn chi2_scores_zero_for_uninformative_word() {
        let docs = vec![toks("shared tax"), toks("shared hoax")];
        let labels = vec![true, false];
        let scored = chi_squared_scores(&docs, &labels);
        let shared = scored.iter().find(|(w, _)| w == "shared").unwrap();
        assert_eq!(shared.1, 0.0);
    }

    #[test]
    fn chi2_word_in_every_doc_is_zero_not_nan() {
        let docs = vec![toks("always"), toks("always")];
        let labels = vec![true, false];
        let scored = chi_squared_scores(&docs, &labels);
        assert!(scored.iter().all(|(_, s)| s.is_finite()));
    }

    #[test]
    fn chi2_counts_presence_not_frequency() {
        // A word repeated within one document must count once.
        let docs = vec![toks("spam spam spam spam other"), toks("calm")];
        let labels = vec![true, false];
        let scored = chi_squared_scores(&docs, &labels);
        let spam = scored.iter().find(|(w, _)| w == "spam").unwrap().1;
        let other = scored.iter().find(|(w, _)| w == "other").unwrap().1;
        assert_eq!(spam, other, "df-based scores must ignore within-doc repeats");
    }

    #[test]
    #[should_panic(expected = "documents vs")]
    fn chi2_rejects_mismatched_lengths() {
        let _ = chi_squared_scores(&[toks("a")], &[true, false]);
    }

    #[test]
    fn extract_keeps_top_d() {
        let docs = vec![
            toks("tax income"),
            toks("tax jobs"),
            toks("hoax lie"),
            toks("hoax fraud"),
        ];
        let labels = vec![true, true, false, false];
        let ws = WordSet::extract(&docs, &labels, 2);
        assert_eq!(ws.len(), 2);
        assert!(ws.position("tax").is_some());
        assert!(ws.position("hoax").is_some());
        assert!(ws.position("income").is_none());
    }

    #[test]
    fn from_words_dedupes_preserving_order() {
        let ws = WordSet::from_words(["b", "a", "b", "c"].map(String::from));
        assert_eq!(ws.words(), &["b", "a", "c"]);
        assert_eq!(ws.position("b"), Some(0));
        assert_eq!(ws.position("c"), Some(2));
    }

    #[test]
    fn json_roundtrip_restores_positions() {
        let ws = WordSet::from_words(["tax", "hoax"].map(String::from));
        let back = WordSet::from_json(&ws.to_json()).unwrap();
        assert_eq!(back.position("hoax"), Some(1));
    }

    #[test]
    fn empty_inputs() {
        assert!(chi_squared_scores(&[], &[]).is_empty());
        let ws = WordSet::extract(&[], &[], 5);
        assert!(ws.is_empty());
    }
}

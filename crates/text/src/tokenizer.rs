//! Tokenisation: lower-case, split on non-alphanumerics, drop stop words
//! and fragments.

use crate::stopwords::is_stop_word;

/// Configurable word tokenizer.
///
/// The default configuration matches the preprocessing the paper
/// describes: case folding, punctuation splitting and stop-word removal.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    /// Drop tokens shorter than this many characters.
    pub min_len: usize,
    /// Remove stop words (Fig 1(b)-(c) of the paper are built this way).
    pub remove_stop_words: bool,
    /// Drop tokens that are purely numeric ("2016", "41").
    pub drop_numeric: bool,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self { min_len: 2, remove_stop_words: true, drop_numeric: true }
    }
}

impl Tokenizer {
    /// A tokenizer that keeps everything — useful for raw frequency
    /// analysis.
    pub fn keep_all() -> Self {
        Self { min_len: 1, remove_stop_words: false, drop_numeric: false }
    }

    /// Splits `text` into owned, lower-cased tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric() && c != '\'')
            .flat_map(|raw| {
                // Apostrophes split into word + suffix ("don't" -> "don", "t");
                // both halves then face the normal filters.
                raw.split('\'')
            })
            .filter_map(|raw| {
                if raw.is_empty() {
                    return None;
                }
                let token = raw.to_lowercase();
                if token.chars().count() < self.min_len {
                    return None;
                }
                if self.drop_numeric && token.chars().all(|c| c.is_ascii_digit()) {
                    return None;
                }
                if self.remove_stop_words && is_stop_word(&token) {
                    return None;
                }
                Some(token)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("The President cut INCOME-tax rates!"),
            vec!["president", "cut", "income", "tax", "rates"]
        );
    }

    #[test]
    fn removes_stop_words_by_default() {
        let t = Tokenizer::default();
        let toks = t.tokenize("this is about the economy and jobs");
        assert_eq!(toks, vec!["economy", "jobs"]);
    }

    #[test]
    fn keep_all_retains_everything() {
        let t = Tokenizer::keep_all();
        let toks = t.tokenize("the 2016 vote");
        assert_eq!(toks, vec!["the", "2016", "vote"]);
    }

    #[test]
    fn numeric_tokens_dropped() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("41 percent in 2016"), vec!["percent"]);
    }

    #[test]
    fn apostrophes_split_contractions() {
        let t = Tokenizer::default();
        // "doesn't" -> "doesn" (stop word) + "t" (too short): both gone.
        assert_eq!(t.tokenize("doesn't obamacare work"), vec!["obamacare", "work"]);
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("   \t\n ").is_empty());
        assert!(t.tokenize("— … !!").is_empty());
    }

    #[test]
    fn min_len_filter() {
        let t = Tokenizer { min_len: 5, remove_stop_words: false, drop_numeric: false };
        assert_eq!(t.tokenize("tiny words stay short"), vec!["words", "short"]);
    }

    #[test]
    fn unicode_words_survive() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("señor económico"), vec!["señor", "económico"]);
    }
}

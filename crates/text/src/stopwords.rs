//! English stop-word list.
//!
//! The paper removes stop words before the frequent-word analysis of
//! Fig 1(b)-(c) and before building the explicit feature word sets. This
//! list is the usual small English closed-class set; matching is
//! case-insensitive because the tokenizer lower-cases first.

/// Sorted list of stop words; binary-searched by [`is_stop_word`].
static STOP_WORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any",
    "are", "aren", "as", "at", "be", "because", "been", "before", "being", "below",
    "between", "both", "but", "by", "can", "cannot", "could", "couldn", "did", "didn",
    "do", "does", "doesn", "doing", "don", "down", "during", "each", "few", "for",
    "from", "further", "had", "hadn", "has", "hasn", "have", "haven", "having", "he",
    "her", "here", "hers", "herself", "him", "himself", "his", "how", "i", "if", "in",
    "into", "is", "isn", "it", "its", "itself", "just", "me", "more", "most", "my",
    "myself", "no", "nor", "not", "now", "of", "off", "on", "once", "only", "or",
    "other", "ought", "our", "ours", "ourselves", "out", "over", "own", "s", "same",
    "she", "should", "shouldn", "so", "some", "such", "t", "than", "that", "the",
    "their", "theirs", "them", "themselves", "then", "there", "these", "they", "this",
    "those", "through", "to", "too", "under", "until", "up", "very", "was", "wasn",
    "we", "were", "weren", "what", "when", "where", "which", "while", "who", "whom",
    "why", "will", "with", "won", "would", "wouldn", "you", "your", "yours",
    "yourself", "yourselves",
];

/// True when `word` (already lower-cased) is an English stop word.
pub fn is_stop_word(word: &str) -> bool {
    STOP_WORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOP_WORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOP_WORDS, "STOP_WORDS must stay sorted");
    }

    #[test]
    fn common_words_are_stopped() {
        for w in ["the", "and", "is", "of", "to", "a"] {
            assert!(is_stop_word(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_pass() {
        for w in ["tax", "president", "obamacare", "economy", "gun"] {
            assert!(!is_stop_word(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn case_sensitivity_contract() {
        // The function expects lower-cased input; upper case is not
        // matched — the tokenizer guarantees lower case.
        assert!(!is_stop_word("The"));
    }
}

//! Explicit bag-of-words features over a [`WordSet`].

use crate::WordSet;
use fd_tensor::Matrix;

/// Counts occurrences of each word-set entry in `tokens`, producing the
/// paper's explicit feature vector `x^e ∈ R^d` as a `1 x d` row.
///
/// Words outside the set are ignored; repeats count every time (the paper
/// uses appearance counts, not presence flags).
pub fn bow_features(tokens: &[String], word_set: &WordSet) -> Matrix {
    let mut features = Matrix::zeros(1, word_set.len());
    for token in tokens {
        if let Some(pos) = word_set.position(token) {
            features[(0, pos)] += 1.0;
        }
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn counts_occurrences() {
        let ws = WordSet::from_words(["tax", "hoax", "economy"].map(String::from));
        let f = bow_features(&toks("tax hoax tax unknown"), &ws);
        assert_eq!(f, Matrix::row_vector(&[2.0, 1.0, 0.0]));
    }

    #[test]
    fn empty_tokens_give_zero_vector() {
        let ws = WordSet::from_words(["tax"].map(String::from));
        assert_eq!(bow_features(&[], &ws), Matrix::zeros(1, 1));
    }

    #[test]
    fn empty_word_set_gives_empty_features() {
        let ws = WordSet::from_words(std::iter::empty());
        let f = bow_features(&toks("anything"), &ws);
        assert_eq!(f.shape(), (1, 0));
    }

    #[test]
    fn feature_positions_follow_word_set_order() {
        let ws = WordSet::from_words(["second", "first"].map(String::from));
        let f = bow_features(&toks("first"), &ws);
        assert_eq!(f, Matrix::row_vector(&[0.0, 1.0]));
    }
}

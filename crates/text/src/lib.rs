//! Text pipeline for the FakeDetector reproduction.
//!
//! The paper extracts two kinds of textual features from every news
//! article, creator profile and subject description:
//!
//! * **explicit features** — counts over pre-extracted discriminative word
//!   sets `W_n`, `W_u`, `W_s` (one per node type); built here from a
//!   [`Tokenizer`], a corpus-wide [`Vocab`] and a χ²-scored
//!   [`WordSet`];
//! * **latent features** — a GRU run over the token-id sequence; this
//!   crate supplies the [`encode_sequence`] padding/truncation that feeds
//!   it (`fd-nn::GruEncoder` does the rest).
//!
//! ```
//! use fd_text::{Tokenizer, Vocab, WordSet};
//!
//! let tok = Tokenizer::default();
//! let docs = ["the tax plan cuts income tax", "the hoax spreads online"];
//! let vocab = Vocab::build(docs.iter().map(|d| tok.tokenize(d)), 1, 100);
//! assert!(vocab.id("tax").is_some());
//! assert!(vocab.id("the").is_none(), "stop words never enter the vocab");
//! ```

mod bow;
mod sequence;
mod stopwords;
mod tfidf;
mod tokenizer;
mod vocab;
mod wordset;

pub use bow::bow_features;
pub use sequence::encode_sequence;
pub use stopwords::is_stop_word;
pub use tfidf::TfIdf;
pub use tokenizer::Tokenizer;
pub use vocab::Vocab;
pub use wordset::{chi_squared_scores, WordSet};

/// Reserved token id for padding in encoded sequences.
pub const PAD_ID: usize = 0;
/// Reserved token id for out-of-vocabulary words.
pub const UNK_ID: usize = 1;
/// Number of reserved ids before real words start.
pub const RESERVED_IDS: usize = 2;

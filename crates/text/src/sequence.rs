//! Fixed-length token-id sequences for the latent (GRU) features.

use crate::{Vocab, PAD_ID};

/// Encodes `tokens` as exactly `max_len` token ids: truncating long
/// inputs and right-padding short ones with [`PAD_ID`], as in the paper
/// ("for those with less than q words, zero-padding will be adopted").
/// Unknown words map to `UNK_ID`.
pub fn encode_sequence(tokens: &[String], vocab: &Vocab, max_len: usize) -> Vec<usize> {
    let mut ids: Vec<usize> = tokens
        .iter()
        .take(max_len)
        .map(|t| vocab.id_or_unk(t))
        .collect();
    ids.resize(max_len, PAD_ID);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tokenizer, UNK_ID};

    fn vocab() -> Vocab {
        let t = Tokenizer::default();
        Vocab::build([t.tokenize("tax economy health gun")], 1, 100)
    }

    #[test]
    fn pads_short_sequences() {
        let v = vocab();
        let ids = encode_sequence(&["tax".into()], &v, 4);
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], v.id("tax").unwrap());
        assert_eq!(&ids[1..], &[PAD_ID; 3]);
    }

    #[test]
    fn truncates_long_sequences() {
        let v = vocab();
        let words: Vec<String> = ["tax", "economy", "health", "gun"].map(String::from).into();
        let ids = encode_sequence(&words, &v, 2);
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], v.id("tax").unwrap());
        assert_eq!(ids[1], v.id("economy").unwrap());
    }

    #[test]
    fn unknown_words_become_unk() {
        let v = vocab();
        let ids = encode_sequence(&["martian".into()], &v, 2);
        assert_eq!(ids[0], UNK_ID);
    }

    #[test]
    fn empty_input_is_all_pad() {
        let v = vocab();
        assert_eq!(encode_sequence(&[], &v, 3), vec![PAD_ID; 3]);
    }

    #[test]
    fn zero_max_len_is_empty() {
        let v = vocab();
        assert!(encode_sequence(&["tax".into()], &v, 0).is_empty());
    }
}

//! First-order optimisers over a [`Params`] store.
//!
//! All optimisers keep their per-parameter state keyed by [`ParamId`]
//! index, so they survive parameters that only receive gradients on some
//! steps (e.g. embedding rows, entity-specific heads).

use crate::params::{ParamId, Params};
use fd_tensor::Matrix;
use std::collections::HashMap;

/// A gradient-descent family optimiser.
pub trait Optimizer {
    /// Applies one update from `(id, gradient)` pairs produced by
    /// [`crate::Binding::grads`].
    fn apply(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]);

    /// Replaces the learning rate (used by [`crate::Schedule`]).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Stochastic gradient descent with optional classical momentum and
/// decoupled weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// Plain SGD at rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: HashMap::new() }
    }

    /// Adds classical momentum `μ ∈ [0, 1)`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Adds decoupled weight decay `λ`.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn apply(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]) {
        for (id, g) in grads {
            let update = if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(id.index())
                    .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
                // v = μv + g; step along v.
                let mut new_v = v.scale(self.momentum);
                new_v.add_assign(g);
                *v = new_v.clone();
                new_v
            } else {
                g.clone()
            };
            let p = params.value_mut(*id);
            if self.weight_decay > 0.0 {
                let decay = p.scale(self.weight_decay);
                p.add_assign_scaled(&decay, -self.lr);
            }
            p.add_assign_scaled(&update, -self.lr);
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
///
/// Moment state is kept in dense vectors indexed by [`ParamId::index`]
/// (not a map) so one update step can hand each thread a disjoint
/// `(param, m, v, grad)` tuple. Every tensor's own update runs
/// sequentially on one thread, so the result is bit-identical for any
/// `FD_THREADS` value.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, step: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Overrides the exponential-decay coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Update steps taken so far (the bias-correction exponent).
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Snapshots the optimiser state for checkpointing. Moments are
    /// keyed by parameter *name* (resolved through `params`) rather
    /// than raw index, so a restore into a freshly rebuilt network is
    /// robust as long as parameter names match.
    pub fn export_state(&self, params: &Params) -> AdamState {
        let moments = |side: &[Option<Matrix>]| {
            side.iter()
                .enumerate()
                .filter_map(|(i, slot)| {
                    let m = slot.as_ref()?;
                    // Dense state can be wider than the param store if a
                    // gradient arrived for an id the store since forgot;
                    // that cannot happen in practice (ids come from the
                    // store), so the lookup is infallible here.
                    Some((params.name(ParamId(i)).to_string(), m.clone()))
                })
                .collect()
        };
        AdamState { step: self.step, m: moments(&self.m), v: moments(&self.v) }
    }

    /// Lazy ("sparse") variant of [`Optimizer::apply`] for minibatch
    /// steps where most embedding-table rows receive no gradient: rows
    /// whose gradient is entirely zero are skipped outright — their
    /// weights are not touched and their moment estimates are *not*
    /// decayed, so an embedding row's Adam trajectory depends only on
    /// the steps that actually touched it (the standard lazy-Adam
    /// semantics). For rows with any non-zero gradient entry the update
    /// is bit-identical to the dense [`Optimizer::apply`] given the same
    /// moments and step count. Row skipping is data-dependent but
    /// deterministic, and each tensor still updates sequentially on one
    /// thread, so results stay bit-identical for any `FD_THREADS`.
    pub fn apply_sparse(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]) {
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        let Some(max_idx) = grads.iter().map(|(id, _)| id.index()).max() else {
            return;
        };
        let width = params.len().max(max_idx + 1);
        if self.m.len() < width {
            self.m.resize_with(width, || None);
            self.v.resize_with(width, || None);
        }
        let mut gradient_of: Vec<Option<&Matrix>> = vec![None; width];
        for (id, g) in grads {
            gradient_of[id.index()] = Some(g);
            for slot in [&mut self.m[id.index()], &mut self.v[id.index()]] {
                if slot.is_none() {
                    *slot = Some(Matrix::zeros(g.rows(), g.cols()));
                }
            }
        }
        let scalars: usize = grads.iter().map(|(_, g)| g.len()).sum();
        let mut tasks: Vec<(&mut Matrix, &mut Matrix, &mut Matrix, &Matrix)> = params
            .values_mut()
            .iter_mut()
            .zip(&mut self.m)
            .zip(&mut self.v)
            .enumerate()
            .filter_map(|(i, ((p, m), v))| {
                let g = gradient_of[i]?;
                Some((p, m.as_mut().expect("moment ensured above"), v.as_mut().expect("moment ensured above"), g))
            })
            .collect();
        let (lr, beta1, beta2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let work = scalars / tasks.len().max(1) * 10;
        fd_tensor::parallel::par_for_each(&mut tasks, work, |(p, m, v, g)| {
            let cols = g.cols();
            for r in 0..g.rows() {
                let g_row = &g.as_slice()[r * cols..(r + 1) * cols];
                if g_row.iter().all(|&x| x == 0.0) {
                    continue;
                }
                let m_row = &mut m.as_mut_slice()[r * cols..(r + 1) * cols];
                let v_row = &mut v.as_mut_slice()[r * cols..(r + 1) * cols];
                let p_row = &mut p.as_mut_slice()[r * cols..(r + 1) * cols];
                for ((mi, vi), &gi) in m_row.iter_mut().zip(v_row.iter_mut()).zip(g_row) {
                    *mi = beta1 * *mi + (1.0 - beta1) * gi;
                    *vi = beta2 * *vi + (1.0 - beta2) * gi * gi;
                }
                for ((pi, &mi), &vi) in p_row.iter_mut().zip(m_row.iter()).zip(v_row.iter()) {
                    let m_hat = mi / bc1;
                    let v_hat = vi / bc2;
                    *pi -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        });
    }

    /// Restores state captured by [`Adam::export_state`], replacing any
    /// moments accumulated so far. Fails if a snapshot entry names a
    /// parameter `params` does not have, or shapes disagree — both mean
    /// the checkpoint belongs to a different model configuration.
    pub fn restore_state(&mut self, params: &Params, state: &AdamState) -> Result<(), String> {
        let mut m: Vec<Option<Matrix>> = vec![None; params.len()];
        let mut v: Vec<Option<Matrix>> = vec![None; params.len()];
        for (side, slots) in [(&state.m, &mut m), (&state.v, &mut v)] {
            for (name, mat) in side {
                let id = params
                    .id_of(name)
                    .ok_or_else(|| format!("optimizer state names unknown parameter {name:?}"))?;
                let p = params.value(id);
                if (p.rows(), p.cols()) != (mat.rows(), mat.cols()) {
                    return Err(format!(
                        "optimizer state for {name:?} has shape {}x{}, parameter is {}x{}",
                        mat.rows(), mat.cols(), p.rows(), p.cols()
                    ));
                }
                slots[id.index()] = Some(mat.clone());
            }
        }
        self.m = m;
        self.v = v;
        self.step = state.step;
        Ok(())
    }
}

/// Serialisable snapshot of an [`Adam`] instance's mutable state:
/// the step counter plus first/second moments keyed by parameter name.
/// Produced by [`Adam::export_state`], consumed by
/// [`Adam::restore_state`]; the checkpoint layer persists it so a
/// resumed run continues the exact optimiser trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Update steps taken.
    pub step: u64,
    /// First moments, `(param name, moment matrix)`.
    pub m: Vec<(String, Matrix)>,
    /// Second moments.
    pub v: Vec<(String, Matrix)>,
}

impl Optimizer for Adam {
    fn apply(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]) {
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        let Some(max_idx) = grads.iter().map(|(id, _)| id.index()).max() else {
            return;
        };
        let width = params.len().max(max_idx + 1);
        if self.m.len() < width {
            self.m.resize_with(width, || None);
            self.v.resize_with(width, || None);
        }
        let mut gradient_of: Vec<Option<&Matrix>> = vec![None; width];
        for (id, g) in grads {
            gradient_of[id.index()] = Some(g);
            for slot in [&mut self.m[id.index()], &mut self.v[id.index()]] {
                if slot.is_none() {
                    *slot = Some(Matrix::zeros(g.rows(), g.cols()));
                }
            }
        }
        let scalars: usize = grads.iter().map(|(_, g)| g.len()).sum();
        let mut tasks: Vec<(&mut Matrix, &mut Matrix, &mut Matrix, &Matrix)> = params
            .values_mut()
            .iter_mut()
            .zip(&mut self.m)
            .zip(&mut self.v)
            .enumerate()
            .filter_map(|(i, ((p, m), v))| {
                let g = gradient_of[i]?;
                Some((p, m.as_mut().expect("moment ensured above"), v.as_mut().expect("moment ensured above"), g))
            })
            .collect();
        let (lr, beta1, beta2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        // ~10 flops per scalar; average tensor size gates the fork.
        let work = scalars / tasks.len().max(1) * 10;
        fd_tensor::parallel::par_for_each(&mut tasks, work, |(p, m, v, g)| {
            for ((mi, vi), &gi) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(g.as_slice())
            {
                *mi = beta1 * *mi + (1.0 - beta1) * gi;
                *vi = beta2 * *vi + (1.0 - beta2) * gi * gi;
            }
            for ((pi, &mi), &vi) in p
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                *pi -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// AdaGrad (Duchi et al. 2011): per-coordinate rates that decay with the
/// accumulated squared gradient. A good fit for the sparse embedding
/// updates of DeepWalk / LINE.
#[derive(Debug)]
pub struct AdaGrad {
    lr: f32,
    eps: f32,
    acc: HashMap<usize, Matrix>,
}

impl AdaGrad {
    /// AdaGrad at base rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self { lr, eps: 1e-8, acc: HashMap::new() }
    }
}

impl Optimizer for AdaGrad {
    fn apply(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]) {
        for (id, g) in grads {
            let acc = self
                .acc
                .entry(id.index())
                .or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let p = params.value_mut(*id);
            for ((pi, ai), &gi) in p
                .as_mut_slice()
                .iter_mut()
                .zip(acc.as_mut_slice())
                .zip(g.as_slice())
            {
                *ai += gi * gi;
                *pi -= self.lr * gi / (ai.sqrt() + self.eps);
            }
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimises f(w) = (w - 3)² with the given optimiser; returns |w - 3|.
    fn descend(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut params = Params::new();
        let id = params.get_or_insert("w", || Matrix::row_vector(&[0.0]));
        for _ in 0..steps {
            let w = params.value(id)[(0, 0)];
            let grad = Matrix::row_vector(&[2.0 * (w - 3.0)]);
            opt.apply(&mut params, &[(id, grad)]);
        }
        (params.value(id)[(0, 0)] - 3.0).abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(descend(&mut opt, 100) < 1e-3);
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let plain = descend(&mut Sgd::new(0.02), 40);
        let with_m = descend(&mut Sgd::new(0.02).with_momentum(0.9), 40);
        assert!(with_m < plain, "momentum {with_m} should beat plain {plain}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        assert!(descend(&mut opt, 200) < 1e-2);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let mut opt = AdaGrad::new(1.0);
        assert!(descend(&mut opt, 200) < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_unused_direction() {
        let mut params = Params::new();
        let id = params.get_or_insert("w", || Matrix::row_vector(&[1.0, 1.0]));
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        // Gradient only on the first coordinate; decay must still shrink
        // the second.
        for _ in 0..10 {
            opt.apply(&mut params, &[(id, Matrix::row_vector(&[0.0, 0.0]))]);
        }
        assert!(params.value(id)[(0, 1)] < 0.7);
    }

    #[test]
    fn adam_state_survives_intermittent_params() {
        // A parameter that receives gradients only on odd steps must not
        // lose its moment estimates.
        let mut params = Params::new();
        let a = params.get_or_insert("a", || Matrix::row_vector(&[0.0]));
        let b = params.get_or_insert("b", || Matrix::row_vector(&[0.0]));
        let mut opt = Adam::new(0.1);
        for step in 0..50 {
            let mut grads = vec![(a, Matrix::row_vector(&[2.0 * (params.value(a)[(0, 0)] - 1.0)]))];
            if step % 2 == 1 {
                grads.push((b, Matrix::row_vector(&[2.0 * (params.value(b)[(0, 0)] - 1.0)])));
            }
            opt.apply(&mut params, &grads);
        }
        assert!((params.value(a)[(0, 0)] - 1.0).abs() < 0.1);
        assert!((params.value(b)[(0, 0)] - 1.0).abs() < 0.3);
    }

    #[test]
    fn adam_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            fd_tensor::parallel::with_thread_count(threads, || {
                let mut params = Params::new();
                let ids: Vec<_> = (0..6)
                    .map(|k| {
                        params.get_or_insert(&format!("w{k}"), || {
                            Matrix::from_fn(8, 8, |r, c| ((r * 8 + c + k) as f32).sin())
                        })
                    })
                    .collect();
                let mut opt = Adam::new(0.05);
                for step in 0..5 {
                    let grads: Vec<_> = ids
                        .iter()
                        // Skip one tensor on even steps: intermittent
                        // grads must stay intermittent under threading.
                        .filter(|id| step % 2 == 1 || id.index() != 3)
                        .map(|&id| (id, params.value(id).scale(0.1)))
                        .collect();
                    opt.apply(&mut params, &grads);
                }
                ids.iter().map(|&id| params.value(id).clone()).collect::<Vec<_>>()
            })
        };
        let (a, b) = (run(1), run(4));
        for (ma, mb) in a.iter().zip(&b) {
            assert_eq!(ma.as_slice(), mb.as_slice(), "updates must not depend on FD_THREADS");
        }
    }

    #[test]
    fn sparse_adam_skips_zero_rows_and_matches_dense_on_touched_rows() {
        let init = || {
            let mut params = Params::new();
            let id = params.get_or_insert("emb", || {
                Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.1)
            });
            (params, id)
        };
        // Gradient touching rows 0 and 2 only.
        let grad = Matrix::from_fn(4, 3, |r, c| {
            if r % 2 == 0 { (c as f32 + 1.0) * 0.5 } else { 0.0 }
        });

        let (mut dense_params, id) = init();
        let mut dense = Adam::new(0.1);
        let (mut sparse_params, _) = init();
        let mut sparse = Adam::new(0.1);
        for _ in 0..3 {
            dense.apply(&mut dense_params, &[(id, grad.clone())]);
            sparse.apply_sparse(&mut sparse_params, &[(id, grad.clone())]);
        }
        let (d, s) = (dense_params.value(id), sparse_params.value(id));
        let untouched = init().0.value(id).clone();
        for r in 0..4 {
            for c in 0..3 {
                if r % 2 == 0 {
                    // Touched rows: bit-identical to the dense update
                    // (same step count, same moments for these rows).
                    assert_eq!(d[(r, c)].to_bits(), s[(r, c)].to_bits(), "row {r} col {c}");
                } else {
                    // Untouched rows: left strictly alone.
                    assert_eq!(s[(r, c)].to_bits(), untouched[(r, c)].to_bits());
                }
            }
        }
    }

    #[test]
    fn sparse_adam_moments_untouched_rows_do_not_decay() {
        let mut params = Params::new();
        let id = params.get_or_insert("w", || Matrix::zeros(2, 2));
        let mut opt = Adam::new(0.1);
        // Step 1 touches both rows; step 2 touches only row 0.
        opt.apply_sparse(&mut params, &[(id, Matrix::ones(2, 2))]);
        let m_after_1 = opt.export_state(&params).m[0].1.clone();
        let partial = Matrix::from_fn(2, 2, |r, _| if r == 0 { 1.0 } else { 0.0 });
        opt.apply_sparse(&mut params, &[(id, partial)]);
        let m_after_2 = opt.export_state(&params).m[0].1.clone();
        // Row 1's first moment is exactly what step 1 left there.
        assert_eq!(m_after_2[(1, 0)].to_bits(), m_after_1[(1, 0)].to_bits());
        assert_eq!(m_after_2[(1, 1)].to_bits(), m_after_1[(1, 1)].to_bits());
        // Row 0's moved.
        assert_ne!(m_after_2[(0, 0)].to_bits(), m_after_1[(0, 0)].to_bits());
    }

    #[test]
    fn sparse_adam_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            fd_tensor::parallel::with_thread_count(threads, || {
                let mut params = Params::new();
                let ids: Vec<_> = (0..4)
                    .map(|k| {
                        params.get_or_insert(&format!("w{k}"), || {
                            Matrix::from_fn(6, 5, |r, c| ((r * 5 + c + k) as f32).cos())
                        })
                    })
                    .collect();
                let mut opt = Adam::new(0.05);
                for step in 0..4 {
                    let grads: Vec<_> = ids
                        .iter()
                        .map(|&id| {
                            // Zero out alternating rows so sparsity is real.
                            let w = params.value(id);
                            let g = Matrix::from_fn(w.rows(), w.cols(), |r, c| {
                                if (r + step) % 2 == 0 { w[(r, c)] * 0.1 } else { 0.0 }
                            });
                            (id, g)
                        })
                        .collect();
                    opt.apply_sparse(&mut params, &grads);
                }
                ids.iter().map(|&id| params.value(id).clone()).collect::<Vec<_>>()
            })
        };
        let (a, b) = (run(1), run(4));
        for (ma, mb) in a.iter().zip(&b) {
            assert_eq!(ma.as_slice(), mb.as_slice(), "sparse updates must not depend on FD_THREADS");
        }
    }

    /// Deterministic pseudo-gradient for the state round-trip tests.
    fn fake_grad(id: ParamId, params: &Params, step: usize) -> (ParamId, Matrix) {
        let w = params.value(id);
        let g = Matrix::from_fn(w.rows(), w.cols(), |r, c| {
            (w[(r, c)] + (step as f32 + 1.0).recip()) * 0.5
        });
        (id, g)
    }

    #[test]
    fn adam_state_roundtrip_continues_bitwise() {
        let build = || {
            let mut params = Params::new();
            let a = params.get_or_insert("a", || Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.3 - 0.5));
            let b = params.get_or_insert("b", || Matrix::from_fn(1, 4, |_, c| c as f32 * 0.1));
            (params, a, b)
        };

        // Control: 10 uninterrupted steps.
        let (mut params, a, b) = build();
        let mut opt = Adam::new(0.05);
        for step in 0..10 {
            let grads = vec![fake_grad(a, &params, step), fake_grad(b, &params, step)];
            opt.apply(&mut params, &grads);
        }
        let control: Vec<Matrix> = vec![params.value(a).clone(), params.value(b).clone()];

        // Interrupted: snapshot at step 5, restore into a *fresh* Adam
        // over a fresh param store seeded with the step-5 weights.
        let (mut params, a, b) = build();
        let mut opt = Adam::new(0.05);
        for step in 0..5 {
            let grads = vec![fake_grad(a, &params, step), fake_grad(b, &params, step)];
            opt.apply(&mut params, &grads);
        }
        let state = opt.export_state(&params);
        assert_eq!(state.step, 5);

        let mut opt2 = Adam::new(0.05);
        opt2.restore_state(&params, &state).unwrap();
        for step in 5..10 {
            let grads = vec![fake_grad(a, &params, step), fake_grad(b, &params, step)];
            opt2.apply(&mut params, &grads);
        }
        for (got, want) in [params.value(a), params.value(b)].iter().zip(&control) {
            for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "resume must be bit-identical");
            }
        }
    }

    #[test]
    fn adam_restore_rejects_mismatched_state() {
        let mut params = Params::new();
        let id = params.get_or_insert("w", || Matrix::zeros(2, 2));
        let mut opt = Adam::new(0.1);
        opt.apply(&mut params, &[(id, Matrix::ones(2, 2))]);
        let state = opt.export_state(&params);

        // Unknown parameter name.
        let mut other = Params::new();
        other.get_or_insert("different", || Matrix::zeros(2, 2));
        assert!(Adam::new(0.1).restore_state(&other, &state).is_err());

        // Shape mismatch.
        let mut reshaped = Params::new();
        reshaped.get_or_insert("w", || Matrix::zeros(3, 3));
        let err = Adam::new(0.1).restore_state(&reshaped, &state).unwrap_err();
        assert!(err.contains("shape"), "{err}");
    }

    #[test]
    fn adam_export_skips_parameters_without_gradients() {
        let mut params = Params::new();
        let a = params.get_or_insert("a", || Matrix::zeros(1, 1));
        params.get_or_insert("never_touched", || Matrix::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        opt.apply(&mut params, &[(a, Matrix::ones(1, 1))]);
        let state = opt.export_state(&params);
        assert_eq!(state.m.len(), 1);
        assert_eq!(state.m[0].0, "a");
        // And restoring it leaves the untouched slot untouched.
        let mut opt2 = Adam::new(0.1);
        opt2.restore_state(&params, &state).unwrap();
        assert_eq!(opt2.step_count(), 1);
    }

    #[test]
    fn set_lr_roundtrips() {
        let mut o: Box<dyn Optimizer> = Box::new(Adam::new(0.1));
        o.set_lr(0.01);
        assert_eq!(o.lr(), 0.01);
    }
}

//! The parameter store: named weight matrices that persist across
//! training steps and (de)serialise to JSON.

use fd_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stable handle to one parameter in a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index; exposed so optimisers can keep dense state vectors.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named collection of trainable matrices.
///
/// Layers allocate parameters once via [`Params::get_or_insert`]; each
/// training step a [`crate::Binding`] registers the *current* values as
/// tape leaves, and the optimiser writes updates back through
/// [`Params::value_mut`].
#[derive(Default, Clone, Serialize, Deserialize)]
pub struct Params {
    names: Vec<String>,
    values: Vec<Matrix>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Params {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the handle for `name`, inserting `init()` on first use.
    ///
    /// # Panics
    /// Panics if a parameter with this name exists with a different shape
    /// than `init` would produce — that is always a wiring bug.
    pub fn get_or_insert(&mut self, name: &str, init: impl FnOnce() -> Matrix) -> ParamId {
        if let Some(&i) = self.index.get(name) {
            return ParamId(i);
        }
        let i = self.values.len();
        self.names.push(name.to_string());
        self.values.push(init());
        self.index.insert(name.to_string(), i);
        ParamId(i)
    }

    /// Looks up an existing parameter by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.index.get(name).copied().map(ParamId)
    }

    /// The parameter's name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Current value.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Current value, mutably (used by optimisers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// All values, mutably, in [`ParamId::index`] order. Lets optimisers
    /// build disjoint per-tensor `&mut` views and fan updates across
    /// threads instead of going through one lookup per id.
    pub fn values_mut(&mut self) -> &mut [Matrix] {
        &mut self.values
    }

    /// Number of parameters (matrices, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Iterates `(id, name, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.names
            .iter()
            .zip(&self.values)
            .enumerate()
            .map(|(i, (n, v))| (ParamId(i), n.as_str(), v))
    }

    /// Sum of squared entries over every parameter — the `L_reg(W)` term
    /// of the paper's objective, evaluated outside the tape. (The tape
    /// version used during training is assembled per-parameter so
    /// gradients flow; this one is for reporting.)
    pub fn l2_norm_squared(&self) -> f32 {
        self.values
            .iter()
            .map(|m| m.as_slice().iter().map(|&v| v * v).sum::<f32>())
            .sum()
    }

    /// Serialises the store to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Params serialisation cannot fail")
    }

    /// Restores a store from [`Params::to_json`] output, rebuilding the
    /// name index.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut p: Params = serde_json::from_str(json)?;
        p.index = p
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        Ok(p)
    }
}

impl std::fmt::Debug for Params {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Params");
        d.field("count", &self.len());
        d.field("scalars", &self.scalar_count());
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_insert_is_idempotent() {
        let mut p = Params::new();
        let a = p.get_or_insert("w", || Matrix::zeros(2, 2));
        let b = p.get_or_insert("w", || panic!("init must not rerun"));
        assert_eq!(a, b);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn lookup_and_names() {
        let mut p = Params::new();
        let id = p.get_or_insert("layer.w", || Matrix::ones(1, 3));
        assert_eq!(p.id_of("layer.w"), Some(id));
        assert_eq!(p.id_of("missing"), None);
        assert_eq!(p.name(id), "layer.w");
        assert_eq!(p.value(id), &Matrix::ones(1, 3));
    }

    #[test]
    fn value_mut_updates_in_place() {
        let mut p = Params::new();
        let id = p.get_or_insert("w", || Matrix::zeros(1, 2));
        p.value_mut(id).add_assign(&Matrix::ones(1, 2));
        assert_eq!(p.value(id), &Matrix::ones(1, 2));
    }

    #[test]
    fn scalar_count_and_l2() {
        let mut p = Params::new();
        p.get_or_insert("a", || Matrix::filled(2, 2, 2.0));
        p.get_or_insert("b", || Matrix::filled(1, 3, -1.0));
        assert_eq!(p.scalar_count(), 7);
        assert_eq!(p.l2_norm_squared(), 16.0 + 3.0);
    }

    #[test]
    fn json_roundtrip_preserves_lookup() {
        let mut p = Params::new();
        let id = p.get_or_insert("enc.w", || Matrix::from_rows(&[&[1.5, -2.0]]));
        p.get_or_insert("enc.b", || Matrix::zeros(1, 2));
        let json = p.to_json();
        let q = Params::from_json(&json).unwrap();
        assert_eq!(q.len(), 2);
        let qid = q.id_of("enc.w").unwrap();
        assert_eq!(qid, id);
        assert_eq!(q.value(qid), p.value(id));
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut p = Params::new();
        p.get_or_insert("first", || Matrix::zeros(1, 1));
        p.get_or_insert("second", || Matrix::zeros(1, 1));
        let names: Vec<&str> = p.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["first", "second"]);
    }
}

//! Learning-rate schedules.

/// Maps an epoch index to a learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// The same rate every epoch.
    Constant(f32),
    /// Multiply by `factor` every `every` epochs: `lr · factor^(e / every)`.
    StepDecay {
        /// Base rate at epoch 0.
        base: f32,
        /// Epochs between decays (must be ≥ 1).
        every: usize,
        /// Multiplicative factor per decay, usually in (0, 1).
        factor: f32,
    },
    /// Linear ramp from `base` down to `floor` over `epochs`, then flat —
    /// the schedule DeepWalk/LINE reference implementations use.
    LinearDecay {
        /// Rate at epoch 0.
        base: f32,
        /// Rate reached at `epochs` and kept afterwards.
        floor: f32,
        /// Ramp length in epochs (must be ≥ 1).
        epochs: usize,
    },
}

impl Schedule {
    /// The learning rate for `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        match *self {
            Schedule::Constant(lr) => lr,
            Schedule::StepDecay { base, every, factor } => {
                assert!(every >= 1, "StepDecay: `every` must be >= 1");
                // Deep decays (factor^k for large k) underflow f32 to 0,
                // which would silently freeze training; keep the rate a
                // positive (if tiny) step instead.
                (base * factor.powi((epoch / every) as i32)).max(f32::MIN_POSITIVE)
            }
            Schedule::LinearDecay { base, floor, epochs } => {
                assert!(epochs >= 1, "LinearDecay: `epochs` must be >= 1");
                if epoch >= epochs {
                    floor
                } else {
                    let t = epoch as f32 / epochs as f32;
                    base + (floor - base) * t
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = Schedule::Constant(0.1);
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(1000), 0.1);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = Schedule::StepDecay { base: 1.0, every: 10, factor: 0.5 };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
    }

    #[test]
    fn linear_decay_ramps_and_floors() {
        let s = Schedule::LinearDecay { base: 1.0, floor: 0.1, epochs: 9 };
        assert_eq!(s.lr_at(0), 1.0);
        assert!((s.lr_at(3) - 0.7).abs() < 1e-6);
        assert_eq!(s.lr_at(9), 0.1);
        assert_eq!(s.lr_at(50), 0.1);
    }

    #[test]
    fn step_decay_never_underflows_to_zero() {
        // 0.42^199 is ~1e-75, far below f32's smallest positive value;
        // the clamp keeps the rate a positive step instead of zero.
        let s = Schedule::StepDecay { base: 0.78, every: 1, factor: 0.42 };
        let lr = s.lr_at(199);
        assert!(lr > 0.0, "deep decay underflowed to {lr}");
    }

    #[test]
    fn monotone_nonincreasing() {
        for s in [
            Schedule::Constant(0.5),
            Schedule::StepDecay { base: 0.5, every: 3, factor: 0.7 },
            Schedule::LinearDecay { base: 0.5, floor: 0.05, epochs: 20 },
        ] {
            let mut prev = f32::INFINITY;
            for e in 0..50 {
                let lr = s.lr_at(e);
                assert!(lr <= prev + 1e-7, "{s:?} increased at epoch {e}");
                prev = lr;
            }
        }
    }
}

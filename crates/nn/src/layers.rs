//! Layers: affine, GRU cell, embedding table, and the pooled GRU text
//! encoder shared by the RNN baseline and HFLU.

use crate::{Binding, ParamId, Params};
use fd_autograd::{RowAccum, Var};
use fd_tensor::{xavier_uniform, Matrix, QuantMatrix};
use rand::Rng;

/// Int8 serving twin of [`Linear`]: owns quantized weights (decoupled
/// from the [`Params`] store) plus the exact f32 bias. Inference only —
/// there is no backward.
#[derive(Debug, Clone)]
pub struct QuantLinear {
    w: QuantMatrix,
    b: Matrix,
}

impl QuantLinear {
    /// `x · Wq + b`, the reduced-precision twin of
    /// [`Linear::forward_matrix`]. The int8 product accumulates in
    /// exact integer arithmetic, so the result is bit-identical at any
    /// `FD_THREADS`.
    pub fn forward_matrix(&self, x: &Matrix) -> Matrix {
        self.w.matmul_quant(x).add_row_broadcast(&self.b)
    }
}

/// Affine layer `x · W + b`.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    /// Weight handle (`in_dim x out_dim`).
    pub w: ParamId,
    /// Bias handle (`1 x out_dim`).
    pub b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Allocates (or re-attaches to) the parameters `{name}.w` /
    /// `{name}.b`.
    pub fn new(params: &mut Params, name: &str, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let w = params.get_or_insert(&format!("{name}.w"), || xavier_uniform(in_dim, out_dim, rng));
        let b = params.get_or_insert(&format!("{name}.b"), || Matrix::zeros(1, out_dim));
        Self { w, b, in_dim, out_dim }
    }

    /// `x · W + b` for a batch of rows.
    pub fn forward(&self, bind: &Binding, x: Var) -> Var {
        let t = bind.tape();
        let xw = t.matmul(x, bind.var(self.w));
        t.add_row_broadcast(xw, bind.var(self.b))
    }

    /// Tape-free `x · W + b`: the batched-inference twin of
    /// [`Linear::forward`]. Row `i` of the result is bit-identical to
    /// running that row through the tape path on its own.
    pub fn forward_matrix(&self, params: &Params, x: &Matrix) -> Matrix {
        x.matmul(params.value(self.w)).add_row_broadcast(params.value(self.b))
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// This layer's parameter handles, for regularisation terms.
    pub fn param_ids(&self) -> Vec<ParamId> {
        vec![self.w, self.b]
    }

    /// Builds the int8 serving twin of this layer: weights quantized
    /// per output column, bias kept in f32 (it is one row and adds no
    /// multiply error).
    pub fn quantize(&self, params: &Params) -> QuantLinear {
        QuantLinear {
            w: QuantMatrix::from_matrix(params.value(self.w)),
            b: params.value(self.b).clone(),
        }
    }
}

/// A gated recurrent unit cell (Cho et al. 2014) — the latent-feature
/// extractor of the paper's HFLU uses exactly this cell.
///
/// Update equations (row-vector convention):
/// ```text
/// z = σ(x·Wz + h·Uz + bz)        update gate
/// r = σ(x·Wr + h·Ur + br)        reset gate
/// n = tanh(x·Wn + (r ⊗ h)·Un + bn)
/// h' = z ⊗ n + (1 - z) ⊗ h
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wr: ParamId,
    ur: ParamId,
    br: ParamId,
    wn: ParamId,
    un: ParamId,
    bn: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Allocates the nine GRU parameter matrices under `{name}.*`.
    pub fn new(params: &mut Params, name: &str, input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        let wz = params.get_or_insert(&format!("{name}.wz"), || xavier_uniform(input_dim, hidden_dim, rng));
        let uz = params.get_or_insert(&format!("{name}.uz"), || xavier_uniform(hidden_dim, hidden_dim, rng));
        let wr = params.get_or_insert(&format!("{name}.wr"), || xavier_uniform(input_dim, hidden_dim, rng));
        let ur = params.get_or_insert(&format!("{name}.ur"), || xavier_uniform(hidden_dim, hidden_dim, rng));
        let wn = params.get_or_insert(&format!("{name}.wn"), || xavier_uniform(input_dim, hidden_dim, rng));
        let un = params.get_or_insert(&format!("{name}.un"), || xavier_uniform(hidden_dim, hidden_dim, rng));
        let bz = params.get_or_insert(&format!("{name}.bz"), || Matrix::zeros(1, hidden_dim));
        let br = params.get_or_insert(&format!("{name}.br"), || Matrix::zeros(1, hidden_dim));
        let bn = params.get_or_insert(&format!("{name}.bn"), || Matrix::zeros(1, hidden_dim));
        Self { wz, uz, bz, wr, ur, br, wn, un, bn, input_dim, hidden_dim }
    }

    /// One recurrence step: `(x, h) -> h'`.
    pub fn step(&self, bind: &Binding, x: Var, h: Var) -> Var {
        let t = bind.tape();
        let gate = |w: ParamId, u: ParamId, b: ParamId, hh: Var| {
            let a = t.matmul(x, bind.var(w));
            let c = t.matmul(hh, bind.var(u));
            let s = t.add(a, c);
            t.add_row_broadcast(s, bind.var(b))
        };
        let z = t.sigmoid(gate(self.wz, self.uz, self.bz, h));
        let r = t.sigmoid(gate(self.wr, self.ur, self.br, h));
        let rh = t.mul(r, h);
        let n = t.tanh(gate(self.wn, self.un, self.bn, rh));
        let zn = t.mul(z, n);
        let oz = t.one_minus(z);
        let ozh = t.mul(oz, h);
        t.add(zn, ozh)
    }

    /// Tape-free batched recurrence step: `n` independent rows advance
    /// together, `(x, h) -> h'` with `x` as `n x input_dim` and `h` as
    /// `n x hidden_dim`. Row `i` is bit-identical to a per-row
    /// [`GruCell::step`] because every kernel involved (matmul,
    /// element-wise maps, broadcasts) operates row-independently with a
    /// fixed per-element order.
    pub fn step_matrix(&self, params: &Params, x: &Matrix, h: &Matrix) -> Matrix {
        let gate = |w: ParamId, u: ParamId, b: ParamId, hh: &Matrix| {
            x.matmul(params.value(w))
                .add(&hh.matmul(params.value(u)))
                .add_row_broadcast(params.value(b))
        };
        let z = gate(self.wz, self.uz, self.bz, h).map(fd_tensor::stable_sigmoid);
        let r = gate(self.wr, self.ur, self.br, h).map(fd_tensor::stable_sigmoid);
        let rh = r.mul(h);
        let n = gate(self.wn, self.un, self.bn, &rh).map(f32::tanh);
        z.mul(&n).add(&z.map(|v| 1.0 - v).mul(h))
    }

    /// A fresh zero hidden state (a constant leaf on the tape).
    pub fn zero_state(&self, bind: &Binding) -> Var {
        bind.tape().leaf(Matrix::zeros(1, self.hidden_dim))
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// All nine parameter handles.
    pub fn param_ids(&self) -> Vec<ParamId> {
        vec![
            self.wz, self.uz, self.bz, self.wr, self.ur, self.br, self.wn, self.un, self.bn,
        ]
    }
}

/// A trainable lookup table mapping token ids to dense rows.
#[derive(Debug, Clone, Copy)]
pub struct Embedding {
    /// The `vocab x dim` table handle.
    pub table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Allocates a `vocab x dim` table under `{name}.table`.
    pub fn new(params: &mut Params, name: &str, vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let table = params.get_or_insert(&format!("{name}.table"), || xavier_uniform(vocab, dim, rng));
        Self { table, vocab, dim }
    }

    /// The `1 x dim` embedding of `token`.
    ///
    /// # Panics
    /// Panics when `token` is out of vocabulary — upstream must map
    /// unknown words to an UNK id.
    pub fn lookup(&self, bind: &Binding, token: usize) -> Var {
        assert!(token < self.vocab, "Embedding::lookup: token {token} >= vocab {}", self.vocab);
        bind.tape().embed_row(bind.var(self.table), token)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// GRU text encoder with the paper's fusion layer:
/// `x^l = σ(W_f · Σ_t h_t + b_f)` — token embeddings feed a GRU, the hidden
/// states are summed and projected through a sigmoid fusion layer.
///
/// `PAD` tokens (id 0 by convention in `fd-text`) are skipped rather than
/// encoded, matching the zero-padding semantics of the paper.
#[derive(Debug, Clone)]
pub struct GruEncoder {
    /// Token embedding table.
    pub embedding: Embedding,
    /// The recurrent cell.
    pub gru: GruCell,
    /// Fusion projection applied to the summed hidden states.
    pub fusion: Linear,
    pad_id: usize,
}

impl GruEncoder {
    /// Builds an encoder producing `out_dim`-wide latent features.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: &mut Params,
        name: &str,
        vocab: usize,
        embed_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        pad_id: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let embedding = Embedding::new(params, &format!("{name}.embed"), vocab, embed_dim, rng);
        let gru = GruCell::new(params, &format!("{name}.gru"), embed_dim, hidden_dim, rng);
        let fusion = Linear::new(params, &format!("{name}.fusion"), hidden_dim, out_dim, rng);
        Self { embedding, gru, fusion, pad_id }
    }

    /// Encodes a token-id sequence to a `1 x out_dim` latent feature row.
    ///
    /// An all-PAD (or empty) sequence encodes the zero hidden state
    /// through the fusion layer, so downstream code never needs a special
    /// case.
    pub fn encode(&self, bind: &Binding, tokens: &[usize]) -> Var {
        let t = bind.tape();
        let mut h = self.gru.zero_state(bind);
        let mut sum: Option<Var> = None;
        for &tok in tokens {
            if tok == self.pad_id {
                continue;
            }
            let x = self.embedding.lookup(bind, tok);
            h = self.gru.step(bind, x, h);
            sum = Some(match sum {
                Some(s) => t.add(s, h),
                None => h,
            });
        }
        let pooled = sum.unwrap_or(h);
        let fused = self.fusion.forward(bind, pooled);
        t.sigmoid(fused)
    }

    /// Tape-free batched twin of [`GruEncoder::encode`]: encodes all
    /// `sequences` at once, returning one latent row per sequence.
    ///
    /// Each row consumes its own non-PAD tokens in order (PAD positions
    /// are dropped up front, exactly like the per-node path skips them),
    /// so virtual step `t` advances every row that still has a `t`-th
    /// real token through one batched [`GruCell::step_matrix`]; finished
    /// rows keep their state frozen and stop contributing to the pooled
    /// sum. Row `i` of the result is bit-identical to
    /// `encode(bind, sequences[i])`.
    pub fn encode_batch(&self, params: &Params, sequences: &[&[usize]]) -> Matrix {
        let n = sequences.len();
        let (embed_dim, hidden) = (self.embedding.dim(), self.gru.hidden_dim());
        let tokens: Vec<Vec<usize>> = sequences
            .iter()
            .map(|s| s.iter().copied().filter(|&t| t != self.pad_id).collect())
            .collect();
        let steps = tokens.iter().map(Vec::len).max().unwrap_or(0);

        let table = params.value(self.embedding.table);
        let mut h = Matrix::zeros(n, hidden);
        let mut sum = Matrix::zeros(n, hidden);
        let mut x = Matrix::zeros(n, embed_dim);
        for t in 0..steps {
            for (i, toks) in tokens.iter().enumerate() {
                if let Some(&tok) = toks.get(t) {
                    assert!(
                        tok < self.embedding.vocab(),
                        "GruEncoder::encode_batch: token {tok} >= vocab {}",
                        self.embedding.vocab()
                    );
                    x.row_mut(i).copy_from_slice(table.row(tok));
                }
            }
            let h_next = self.gru.step_matrix(params, &x, &h);
            for (i, toks) in tokens.iter().enumerate() {
                if t < toks.len() {
                    h.row_mut(i).copy_from_slice(h_next.row(i));
                    if t == 0 {
                        // First real token: the per-node path starts its
                        // running sum *at* h, not at 0 + h.
                        sum.row_mut(i).copy_from_slice(h_next.row(i));
                    } else {
                        for (s, &v) in sum.row_mut(i).iter_mut().zip(h_next.row(i)) {
                            *s += v;
                        }
                    }
                }
            }
        }
        // Rows with no real tokens pool the zero state, matching the
        // per-node fallback; `sum` is already zero there.
        self.fusion.forward_matrix(params, &sum).map(fd_tensor::stable_sigmoid)
    }

    /// Tape-recorded batched twin of [`GruEncoder::encode`]: encodes all
    /// `sequences` in one pass, returning an `n x out_dim` [`Var`] whose
    /// row `i` is bit-identical to `encode(bind, sequences[i])` — and
    /// whose backward pass produces the same parameter gradients as the
    /// per-node tape would, because every batched op's adjoint reduces in
    /// the same order the per-node ops do.
    ///
    /// The virtual-step schedule mirrors [`GruEncoder::encode_batch`]:
    /// finished rows keep gathering their last token (the stale-`x`
    /// convention) but their `h_next` row is discarded by the row mask,
    /// so no gradient flows through the stale lookup.
    pub fn encode_batch_tape(&self, bind: &Binding, sequences: &[&[usize]]) -> Var {
        let t = bind.tape();
        let n = sequences.len();
        let hidden = self.gru.hidden_dim();
        let tokens: Vec<Vec<usize>> = sequences
            .iter()
            .map(|s| s.iter().copied().filter(|&tok| tok != self.pad_id).collect())
            .collect();
        let steps = tokens.iter().map(Vec::len).max().unwrap_or(0);

        let table = bind.var(self.embedding.table);
        let mut h = t.leaf(Matrix::zeros(n, hidden));
        let mut sum = t.leaf(Matrix::zeros(n, hidden));
        for step in 0..steps {
            let idx: Vec<Option<usize>> = tokens
                .iter()
                .map(|toks| {
                    let &tok = toks.get(step.min(toks.len().wrapping_sub(1)))?;
                    assert!(
                        tok < self.embedding.vocab(),
                        "GruEncoder::encode_batch_tape: token {tok} >= vocab {}",
                        self.embedding.vocab()
                    );
                    Some(tok)
                })
                .collect();
            let x = t.gather_rows(table, &idx);
            let h_next = self.gru.step(bind, x, h);
            let active: Vec<bool> = tokens.iter().map(|toks| step < toks.len()).collect();
            h = t.mask_rows(h_next, h, &active);
            let phase: Vec<RowAccum> = tokens
                .iter()
                .map(|toks| {
                    if step >= toks.len() {
                        RowAccum::Skip
                    } else if step == 0 {
                        RowAccum::Start
                    } else {
                        RowAccum::Add
                    }
                })
                .collect();
            sum = t.accum_rows(sum, h_next, &phase);
        }
        // Rows with no real tokens pool the zero state, matching the
        // per-node fallback.
        let fused = self.fusion.forward(bind, sum);
        t.sigmoid(fused)
    }

    /// Output width of [`GruEncoder::encode`].
    pub fn out_dim(&self) -> usize {
        self.fusion.out_dim()
    }

    /// All parameter handles of the encoder.
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = vec![self.embedding.table];
        ids.extend(self.gru.param_ids());
        ids.extend(self.fusion.param_ids());
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_autograd::Tape;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes_and_bias() {
        let mut params = Params::new();
        let mut r = rng();
        let layer = Linear::new(&mut params, "l", 3, 5, &mut r);
        assert_eq!(params.value(layer.w).shape(), (3, 5));
        assert_eq!(params.value(layer.b).shape(), (1, 5));
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let x = tape.leaf(Matrix::zeros(2, 3));
        let y = layer.forward(&bind, x);
        assert_eq!(tape.shape(y), (2, 5));
        // With zero input, output rows equal the bias (zeros here).
        assert_eq!(tape.value(y), Matrix::zeros(2, 5));
    }

    #[test]
    fn linear_is_reconstructable_by_name() {
        let mut params = Params::new();
        let mut r = rng();
        let l1 = Linear::new(&mut params, "shared", 2, 2, &mut r);
        let l2 = Linear::new(&mut params, "shared", 2, 2, &mut r);
        assert_eq!(l1.w, l2.w);
        assert_eq!(params.len(), 2);
    }

    #[test]
    fn gru_step_keeps_hidden_shape_and_changes_state() {
        let mut params = Params::new();
        let mut r = rng();
        let cell = GruCell::new(&mut params, "g", 4, 6, &mut r);
        assert_eq!(params.len(), 9);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let h0 = cell.zero_state(&bind);
        let x = tape.leaf(Matrix::filled(1, 4, 0.5));
        let h1 = cell.step(&bind, x, h0);
        assert_eq!(tape.shape(h1), (1, 6));
        assert_ne!(tape.value(h1), tape.value(h0), "state must move off zero");
        // Bounded by construction: every component is a convex mix of
        // tanh outputs and the previous state.
        assert!(tape.value(h1).max_abs() <= 1.0);
    }

    #[test]
    fn gru_is_deterministic_given_seed() {
        let build = || {
            let mut params = Params::new();
            let mut r = rng();
            let cell = GruCell::new(&mut params, "g", 2, 3, &mut r);
            let tape = Tape::new();
            let bind = Binding::new(&tape, &params);
            let mut h = cell.zero_state(&bind);
            for step in 0..5 {
                let x = tape.leaf(Matrix::filled(1, 2, step as f32 * 0.1));
                h = cell.step(&bind, x, h);
            }
            tape.value(h)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn embedding_lookup_reads_table_row() {
        let mut params = Params::new();
        let mut r = rng();
        let emb = Embedding::new(&mut params, "e", 10, 4, &mut r);
        let expected = params.value(emb.table).row_matrix(7);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let v = emb.lookup(&bind, 7);
        assert_eq!(tape.value(v), expected);
    }

    #[test]
    #[should_panic(expected = "token 10 >= vocab 10")]
    fn embedding_rejects_oov() {
        let mut params = Params::new();
        let mut r = rng();
        let emb = Embedding::new(&mut params, "e", 10, 4, &mut r);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let _ = emb.lookup(&bind, 10);
    }

    #[test]
    fn encoder_handles_empty_and_padded_sequences() {
        let mut params = Params::new();
        let mut r = rng();
        let enc = GruEncoder::new(&mut params, "enc", 20, 4, 6, 8, 0, &mut r);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let empty = enc.encode(&bind, &[]);
        assert_eq!(tape.shape(empty), (1, 8));
        let padded = enc.encode(&bind, &[0, 0, 0]);
        assert_eq!(tape.value(empty), tape.value(padded), "PAD-only equals empty");
        let real = enc.encode(&bind, &[3, 7, 0, 12]);
        assert_ne!(tape.value(real), tape.value(empty));
        // Sigmoid output: strictly inside (0, 1).
        assert!(tape.value(real).as_slice().iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn encoder_order_sensitivity() {
        // A recurrent encoder must distinguish word order (unlike BoW).
        let mut params = Params::new();
        let mut r = rng();
        let enc = GruEncoder::new(&mut params, "enc", 20, 4, 6, 8, 0, &mut r);
        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let ab = enc.encode(&bind, &[1, 2, 3, 4]);
        let ba = enc.encode(&bind, &[4, 3, 2, 1]);
        assert_ne!(tape.value(ab), tape.value(ba));
    }

    #[test]
    fn encode_batch_tape_matches_per_node_values_and_grads() {
        let mut params = Params::new();
        let mut r = rng();
        let enc = GruEncoder::new(&mut params, "enc", 20, 4, 6, 8, 0, &mut r);
        // Mixed lengths, PAD runs, one empty, one PAD-only sequence.
        let seqs: [&[usize]; 5] = [&[3, 7, 0, 12], &[5], &[], &[0, 0], &[9, 1, 2, 2, 14]];

        // Per-node reference: encode each row alone, sum of square norms.
        let tape_ref = Tape::new();
        let bind_ref = Binding::new(&tape_ref, &params);
        let rows: Vec<_> = seqs.iter().map(|s| enc.encode(&bind_ref, s)).collect();
        let norms: Vec<_> = rows.iter().map(|&v| tape_ref.square_norm(v)).collect();
        let loss_ref = tape_ref.sum_n(&norms);
        tape_ref.backward(loss_ref);
        let grads_ref = bind_ref.grads();

        let tape = Tape::new();
        let bind = Binding::new(&tape, &params);
        let batched = enc.encode_batch_tape(&bind, &seqs);
        assert_eq!(tape.shape(batched), (5, 8));
        for (i, &row) in rows.iter().enumerate() {
            assert_eq!(
                tape_ref.value(row).row(0),
                tape.with_value(batched, |m| m.row(i).to_vec()),
                "row {i} must be bit-identical to the per-node encode"
            );
        }
        // Tape-free batch path agrees bitwise too.
        assert_eq!(tape.value(batched), enc.encode_batch(&params, &seqs));

        let loss = tape.square_norm(batched);
        tape.backward(loss);
        let grads = bind.grads();
        assert_eq!(grads.len(), grads_ref.len());
        for ((id_a, ga), (id_b, gb)) in grads.iter().zip(&grads_ref) {
            assert_eq!(id_a, id_b);
            fd_tensor::assert_close(ga, gb, 1e-4);
        }
    }

    #[test]
    fn encoder_trains_toward_target() {
        // Tiny sanity fit: push the encoder output toward zero and verify
        // the loss drops. End-to-end learning tests live in the trainer.
        use crate::{Adam, Optimizer};
        let mut params = Params::new();
        let mut r = rng();
        let enc = GruEncoder::new(&mut params, "enc", 10, 3, 4, 2, 0, &mut r);
        let mut opt = Adam::new(5e-2);
        let seq = [1usize, 2, 3];
        let loss_at = |params: &Params| {
            let tape = Tape::new();
            let bind = Binding::new(&tape, params);
            let out = enc.encode(&bind, &seq);
            let loss = tape.square_norm(out);
            tape.with_value(loss, |m| m[(0, 0)])
        };
        let before = loss_at(&params);
        for _ in 0..30 {
            let tape = Tape::new();
            let bind = Binding::new(&tape, &params);
            let out = enc.encode(&bind, &seq);
            let loss = tape.square_norm(out);
            tape.backward(loss);
            let grads = bind.grads();
            opt.apply(&mut params, &grads);
        }
        let after = loss_at(&params);
        assert!(after < before * 0.5, "loss {before} -> {after} did not drop");
    }
}

//! Neural-network building blocks on top of [`fd_autograd`].
//!
//! This crate supplies everything the FakeDetector models and the learned
//! baselines need around the raw autodiff engine:
//!
//! * [`Params`] — a named, serialisable store of weight matrices that
//!   outlives the per-step tapes;
//! * [`Binding`] — the bridge that lazily registers parameters as tape
//!   leaves for one forward/backward pass and collects their gradients;
//! * layers — [`Linear`], [`GruCell`], [`Embedding`] and the pooled
//!   [`GruEncoder`] used by both the RNN baseline and HFLU;
//! * optimisers — [`Sgd`], [`Adam`], [`AdaGrad`] behind the [`Optimizer`]
//!   trait, plus global-norm [`clip_global_norm`] and LR
//!   [`Schedule`]s.
//!
//! # Training-step shape
//!
//! ```
//! use fd_autograd::Tape;
//! use fd_nn::{Adam, Binding, Linear, Optimizer, Params};
//! use fd_tensor::Matrix;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut params = Params::new();
//! let layer = Linear::new(&mut params, "head", 4, 2, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! for _step in 0..10 {
//!     let tape = Tape::new();
//!     let binding = Binding::new(&tape, &params);
//!     let x = tape.leaf(Matrix::row_vector(&[1.0, 0.5, -0.5, 2.0]));
//!     let logits = layer.forward(&binding, x);
//!     let loss = tape.softmax_cross_entropy(logits, 1);
//!     tape.backward(loss);
//!     let grads = binding.grads();
//!     opt.apply(&mut params, &grads);
//! }
//! ```

mod binding;
mod clip;
mod layers;
mod optim;
mod params;
mod schedule;

pub use binding::Binding;
pub use clip::{clip_global_norm, global_norm};
pub use layers::{Embedding, GruCell, GruEncoder, Linear, QuantLinear};
pub use optim::{AdaGrad, Adam, AdamState, Optimizer, Sgd};
pub use params::{ParamId, Params};
pub use schedule::Schedule;

//! Global-norm gradient clipping — the standard guard against the
//! exploding gradients recurrent models (GRU chains, unrolled GDU
//! diffusion) are prone to.

use crate::params::ParamId;
use fd_tensor::Matrix;

/// Euclidean norm over all gradients jointly.
///
/// Per-tensor squared norms are computed across `FD_THREADS` (each
/// tensor reduced over `fd_tensor::parallel`'s fixed-shape tree, whose
/// result depends only on the data) and then summed serially in
/// gradient order, so the result is bit-identical for any thread count.
pub fn global_norm(grads: &[(ParamId, Matrix)]) -> f32 {
    let work = grads.iter().map(|(_, g)| g.len()).sum::<usize>() / grads.len().max(1);
    fd_tensor::parallel::par_map(grads.len(), work, |i| {
        let n = grads[i].1.frobenius_norm();
        n * n
    })
    .into_iter()
    .sum::<f32>()
    .sqrt()
}

/// Scales all gradients so their joint norm is at most `max_norm`.
/// Returns the pre-clip norm.
///
/// A non-finite norm (NaN or ±∞ — an exploded or poisoned backward
/// pass) is deliberately **not** "clipped": scaling by `max_norm / NaN`
/// would turn every gradient into NaN and the subsequent optimiser step
/// would poison the weights. The gradients are left untouched and the
/// non-finite norm is returned — callers (`FakeDetector::fit`'s
/// divergence guard) must check `norm.is_finite()` and skip the step /
/// roll back instead of applying it.
///
/// The rescale fans per-tensor work across `FD_THREADS`; each tensor is
/// scaled element-wise by one thread, so clipping stays bit-identical
/// for any thread count.
///
/// # Panics
/// Panics when `max_norm` is not positive.
pub fn clip_global_norm(grads: &mut [(ParamId, Matrix)], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "clip_global_norm: max_norm must be positive");
    let norm = global_norm(grads);
    if norm > max_norm && norm.is_finite() {
        let scale = max_norm / norm;
        let work = grads.iter().map(|(_, g)| g.len()).sum::<usize>() / grads.len().max(1);
        fd_tensor::parallel::par_for_each(grads, work, |(_, g)| {
            g.map_in_place(|v| v * scale);
        });
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grads(values: &[&[f32]]) -> Vec<(ParamId, Matrix)> {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| (param(i), Matrix::row_vector(v)))
            .collect()
    }

    fn param(i: usize) -> ParamId {
        // Construct through the public store so the type stays opaque.
        let mut p = crate::Params::new();
        for k in 0..=i {
            p.get_or_insert(&format!("p{k}"), || Matrix::zeros(1, 1));
        }
        p.id_of(&format!("p{i}")).unwrap()
    }

    #[test]
    fn norm_over_multiple_parameters() {
        let g = grads(&[&[3.0], &[4.0]]);
        assert!((global_norm(&g) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn clip_rescales_when_above_threshold() {
        let mut g = grads(&[&[3.0], &[4.0]]);
        let pre = clip_global_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((global_norm(&g) - 1.0).abs() < 1e-5);
        // Direction is preserved.
        assert!((g[0].1[(0, 0)] / g[1].1[(0, 0)] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn clip_is_noop_below_threshold() {
        let mut g = grads(&[&[0.3], &[0.4]]);
        clip_global_norm(&mut g, 1.0);
        assert_eq!(g[0].1[(0, 0)], 0.3);
        assert_eq!(g[1].1[(0, 0)], 0.4);
    }

    #[test]
    fn clip_leaves_nonfinite_untouched_rather_than_poisoning() {
        // A NaN norm must not scale every gradient to NaN; the caller can
        // then detect and skip the step.
        let mut g = grads(&[&[f32::NAN], &[1.0]]);
        let norm = clip_global_norm(&mut g, 1.0);
        assert!(norm.is_nan(), "caller must see the NaN norm to trigger its divergence guard");
        assert_eq!(g[1].1[(0, 0)], 1.0);
    }

    #[test]
    fn clip_reports_infinite_norm_without_scaling() {
        // Overflowed (±∞) gradients: same contract as NaN — report, do
        // not scale. max/∞ would zero every finite gradient and the
        // infinite ones would become NaN (∞ · 0).
        let mut g = grads(&[&[f32::INFINITY], &[2.0]]);
        let norm = clip_global_norm(&mut g, 1.0);
        assert!(norm.is_infinite(), "caller must see the infinite norm");
        assert_eq!(g[1].1[(0, 0)], 2.0, "finite gradients must survive untouched");

        // Large-but-finite values that overflow the squared-sum also
        // report infinity rather than fabricating a scale.
        let mut g = grads(&[&[f32::MAX], &[f32::MAX]]);
        let norm = clip_global_norm(&mut g, 1.0);
        assert!(norm.is_infinite());
        assert_eq!(g[0].1[(0, 0)], f32::MAX);
    }

    #[test]
    fn empty_gradient_list_is_zero_norm() {
        assert_eq!(global_norm(&[]), 0.0);
    }

    #[test]
    fn clip_is_bit_identical_across_thread_counts() {
        // Tensors larger than one reduction-tree chunk (4096 elements),
        // so the tree actually has interior nodes to keep deterministic.
        let build = || {
            (0..7)
                .map(|k| (param(k), Matrix::from_fn(80, 80, |r, c| ((r * 80 + c + k) as f32).cos() * 3.0)))
                .collect::<Vec<_>>()
        };
        let run = |threads: usize| {
            fd_tensor::parallel::with_thread_count(threads, || {
                let mut g = build();
                let norm = clip_global_norm(&mut g, 1.5);
                (norm, g)
            })
        };
        let (norm1, g1) = run(1);
        for threads in [2usize, 3, 4, 8] {
            let (norm_t, g_t) = run(threads);
            assert_eq!(norm1.to_bits(), norm_t.to_bits(), "norm, threads = {threads}");
            for ((_, a), (_, b)) in g1.iter().zip(&g_t) {
                assert_eq!(a.as_slice(), b.as_slice(), "clip must not depend on FD_THREADS");
            }
        }
    }
}

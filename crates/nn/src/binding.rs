//! Bridges a persistent [`Params`] store onto a single-step [`Tape`].

use crate::params::{ParamId, Params};
use fd_autograd::{Tape, Var};
use fd_tensor::Matrix;
use std::cell::RefCell;

/// Per-step view of the parameters on one tape.
///
/// Each parameter is registered as a tape leaf at most once per binding
/// (lazily, on first use), so a layer shared across hundreds of entities —
/// like the GRU encoder applied to every article — contributes a single
/// leaf whose gradient accumulates all uses.
pub struct Binding<'t> {
    tape: &'t Tape,
    params: &'t Params,
    vars: RefCell<Vec<Option<Var>>>,
}

impl<'t> Binding<'t> {
    /// Creates a binding of `params` onto `tape`.
    pub fn new(tape: &'t Tape, params: &'t Params) -> Self {
        Self {
            tape,
            params,
            vars: RefCell::new(vec![None; params.len()]),
        }
    }

    /// The tape this binding records on.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// The tape leaf for parameter `id`, registering it on first use.
    ///
    /// # Panics
    /// Panics when `id` comes from a different (larger) store than the one
    /// this binding wraps.
    pub fn var(&self, id: ParamId) -> Var {
        let mut vars = self.vars.borrow_mut();
        assert!(
            id.0 < vars.len(),
            "Binding::var: parameter {} not in the bound store (len {}); \
             bindings must be created after all layers are constructed",
            id.0,
            vars.len()
        );
        *vars[id.0].get_or_insert_with(|| self.tape.leaf(self.params.value(id).clone()))
    }

    /// Gradients of every parameter used in this step, after
    /// `tape.backward`. Parameters never touched (or unreached by the
    /// loss) are skipped.
    pub fn grads(&self) -> Vec<(ParamId, Matrix)> {
        self.vars
            .borrow()
            .iter()
            .enumerate()
            .filter_map(|(i, v)| {
                let var = (*v)?;
                let g = self.tape.grad(var)?;
                Some((ParamId(i), g))
            })
            .collect()
    }

    /// The tape-level L2 term `Σ_id Σ w²` over the given parameters, built
    /// so gradients flow back into them (the paper's `α · L_reg(W)`).
    pub fn l2_term(&self, ids: &[ParamId]) -> Var {
        assert!(!ids.is_empty(), "l2_term: no parameters given");
        let parts: Vec<Var> = ids.iter().map(|&id| {
            let v = self.var(id);
            self.tape.square_norm(v)
        }).collect();
        self.tape.sum_n(&parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_tensor::assert_close;

    #[test]
    fn var_registers_once() {
        let mut params = Params::new();
        let id = params.get_or_insert("w", || Matrix::ones(1, 2));
        let tape = Tape::new();
        let b = Binding::new(&tape, &params);
        let v1 = b.var(id);
        let v2 = b.var(id);
        assert_eq!(v1, v2);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn grads_skip_unused_params() {
        let mut params = Params::new();
        let used = params.get_or_insert("used", || Matrix::row_vector(&[2.0]));
        let _unused = params.get_or_insert("unused", || Matrix::row_vector(&[5.0]));
        let tape = Tape::new();
        let b = Binding::new(&tape, &params);
        let v = b.var(used);
        let loss = tape.square_norm(v);
        tape.backward(loss);
        let grads = b.grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].0, used);
        assert_close(&grads[0].1, &Matrix::row_vector(&[4.0]), 1e-6);
    }

    #[test]
    fn shared_param_accumulates_gradient_across_uses() {
        let mut params = Params::new();
        let id = params.get_or_insert("w", || Matrix::row_vector(&[1.0]));
        let tape = Tape::new();
        let b = Binding::new(&tape, &params);
        // Two "entities" both use the same parameter.
        let w = b.var(id);
        let l1 = tape.square_norm(w);
        let l2 = tape.square_norm(w);
        let total = tape.add(l1, l2);
        tape.backward(total);
        let grads = b.grads();
        assert_close(&grads[0].1, &Matrix::row_vector(&[4.0]), 1e-6);
    }

    #[test]
    fn l2_term_matches_sum_of_squares() {
        let mut params = Params::new();
        let a = params.get_or_insert("a", || Matrix::row_vector(&[1.0, 2.0]));
        let c = params.get_or_insert("c", || Matrix::row_vector(&[3.0]));
        let tape = Tape::new();
        let b = Binding::new(&tape, &params);
        let reg = b.l2_term(&[a, c]);
        assert_eq!(tape.value(reg)[(0, 0)], 14.0);
        tape.backward(reg);
        let grads = b.grads();
        assert_eq!(grads.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not in the bound store")]
    fn stale_binding_panics() {
        let mut params = Params::new();
        params.get_or_insert("w", || Matrix::ones(1, 1));
        let tape = Tape::new();
        // Binding sized for 1 param; fake a later id.
        let b = Binding::new(&tape, &params);
        let _ = b.var(ParamId(5));
    }
}

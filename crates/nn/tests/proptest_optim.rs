//! Property tests for the optimisers and clipping: convergence on random
//! convex quadratics, clip-norm invariants, schedule monotonicity.

use fd_nn::{clip_global_norm, global_norm, AdaGrad, Adam, Optimizer, Params, Schedule, Sgd};
use fd_tensor::Matrix;
use proptest::prelude::*;

/// Minimise f(w) = Σ cᵢ (wᵢ - tᵢ)² from w = 0; returns max |wᵢ - tᵢ|.
fn descend(opt: &mut dyn Optimizer, targets: &[f32], curvature: &[f32], steps: usize) -> f32 {
    let mut params = Params::new();
    let id = params.get_or_insert("w", || Matrix::zeros(1, targets.len()));
    for _ in 0..steps {
        let w = params.value(id).clone();
        let grad = Matrix::from_fn(1, targets.len(), |_, j| {
            2.0 * curvature[j] * (w[(0, j)] - targets[j])
        });
        opt.apply(&mut params, &[(id, grad)]);
    }
    params
        .value(id)
        .row(0)
        .iter()
        .zip(targets)
        .map(|(&w, &t)| (w - t).abs())
        .fold(0.0f32, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn adam_converges_on_random_quadratics(
        targets in prop::collection::vec(-3.0f32..3.0, 1..6),
        curv in prop::collection::vec(0.2f32..2.0, 6),
    ) {
        let curvature = &curv[..targets.len()];
        let gap = descend(&mut Adam::new(0.15), &targets, curvature, 400);
        prop_assert!(gap < 0.05, "gap {gap}");
    }

    #[test]
    fn sgd_converges_with_safe_rate(
        targets in prop::collection::vec(-2.0f32..2.0, 1..5),
        curv in prop::collection::vec(0.2f32..1.5, 5),
    ) {
        let curvature = &curv[..targets.len()];
        // lr < 1/(2*max curvature) guarantees contraction.
        let gap = descend(&mut Sgd::new(0.15), &targets, curvature, 600);
        prop_assert!(gap < 0.05, "gap {gap}");
    }

    #[test]
    fn adagrad_never_diverges(
        targets in prop::collection::vec(-2.0f32..2.0, 1..5),
        curv in prop::collection::vec(0.2f32..2.0, 5),
    ) {
        let curvature = &curv[..targets.len()];
        let gap = descend(&mut AdaGrad::new(0.5), &targets, curvature, 800);
        prop_assert!(gap.is_finite());
        prop_assert!(gap < 0.5, "gap {gap}");
    }

    #[test]
    fn clip_caps_norm_and_preserves_direction(values in prop::collection::vec(-100.0f32..100.0, 1..20), max_norm in 0.1f32..10.0) {
        let mut params = Params::new();
        let id = params.get_or_insert("g", || Matrix::zeros(1, 1));
        let mut grads = vec![(id, Matrix::row_vector(&values))];
        let before = global_norm(&grads);
        let reported = clip_global_norm(&mut grads, max_norm);
        prop_assert!((reported - before).abs() < before.max(1.0) * 1e-4);
        let after = global_norm(&grads);
        prop_assert!(after <= max_norm * (1.0 + 1e-4) + 1e-6);
        if before > 1e-6 && before > max_norm {
            // Direction preserved: clipped = scaled original.
            let scale = after / before;
            for (&orig, &clipped) in values.iter().zip(grads[0].1.row(0)) {
                prop_assert!((clipped - orig * scale).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn schedules_stay_positive_and_bounded(base in 1e-4f32..1.0, every in 1usize..20, factor in 0.1f32..0.99, epoch in 0usize..200) {
        let schedules = [
            Schedule::Constant(base),
            Schedule::StepDecay { base, every, factor },
            Schedule::LinearDecay { base, floor: base * 0.1, epochs: every },
        ];
        for s in schedules {
            let lr = s.lr_at(epoch);
            prop_assert!(lr > 0.0 && lr <= base * (1.0 + 1e-6), "{s:?} gave {lr}");
        }
    }
}

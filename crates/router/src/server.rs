//! The router process: accept loop, admission control, shard fan-out,
//! and the job endpoints.
//!
//! Request path: a handler thread parses the request, derives its
//! trace context (the inbound `X-Request-Id` is forwarded upstream, so
//! router, shard and batcher spans share one trace), takes an
//! admission slot (bounded in-flight work → 429 + `Retry-After` under
//! overload), picks the owning shard, and hands the body to the
//! [`Dispatcher`] — which owns failover, hedging, retry budget, and
//! breakers. Upstream replies are relayed verbatim; `predict_batch`
//! fan-out merges raw JSON slices so routed scores stay bitwise
//! identical to a single process's.

use crate::dispatch::{DispatchConfig, Dispatcher, Outcome};
use crate::jobs::JobStore;
use crate::topology::Topology;
use crate::wire;
use fd_serve::http::{bind_reuse, read_request, write_response_ext, HttpError, Request};
use fd_obs::TraceCtx;
use serde::Serialize;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often idle connection handlers poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// Tunables for [`Router::start`]; defaults match the documented
/// `fdctl route` defaults (see OPERATIONS.md).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// The shard/replica layout.
    pub topology: Topology,
    /// Failure-handling tunables (timeouts, budget, breakers).
    pub dispatch: DispatchConfig,
    /// End-to-end deadline per routed request (504 past it).
    pub deadline_ms: u64,
    /// Concurrent routed requests beyond which new work gets 429 —
    /// the router's bounded queue.
    pub inflight_bound: usize,
    /// Largest accepted request body (413 past it).
    pub max_body_bytes: usize,
    /// Replica `/healthz` probe period.
    pub probe_interval_ms: u64,
    /// Bulk-job spool directory; `None` disables `/v1/jobs`.
    pub spool_dir: Option<PathBuf>,
    /// Requests per upstream chunk when scoring a bulk job.
    pub job_chunk: usize,
    /// Deadline per bulk-job chunk.
    pub job_chunk_deadline_ms: u64,
}

impl RouterConfig {
    /// Defaults for `topology`; `addr` port 0.
    pub fn new(topology: Topology) -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            topology,
            dispatch: DispatchConfig::default(),
            deadline_ms: 5_000,
            inflight_bound: 256,
            max_body_bytes: 8 << 20,
            probe_interval_ms: 200,
            spool_dir: None,
            job_chunk: 64,
            job_chunk_deadline_ms: 60_000,
        }
    }
}

/// A running router; [`Router::shutdown`] stops it cleanly.
pub struct Router {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

/// Shared state the handler threads close over.
struct Ctx {
    dispatcher: Dispatcher,
    jobs: Option<JobStore>,
    config: RouterConfig,
    inflight: AtomicUsize,
}

impl Router {
    /// Binds, recovers any spooled jobs, and starts the accept loop,
    /// the health prober, and (when a spool is configured) the job
    /// runner.
    pub fn start(config: RouterConfig) -> Result<Self, String> {
        let listener =
            bind_reuse(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let jobs = match &config.spool_dir {
            Some(dir) => Some(JobStore::open(dir)?),
            None => None,
        };
        let dispatcher = Dispatcher::new(config.topology.clone(), config.dispatch.clone());
        let ctx = Arc::new(Ctx { dispatcher, jobs, config, inflight: AtomicUsize::new(0) });
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        {
            let ctx = Arc::clone(&ctx);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let interval = Duration::from_millis(ctx.config.probe_interval_ms.max(10));
                crate::dispatch::probe_loop(&ctx.dispatcher, interval, &stop);
            }));
        }
        if ctx.jobs.is_some() {
            let ctx = Arc::clone(&ctx);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                let jobs = ctx.jobs.as_ref().expect("job store checked above");
                jobs.run_worker(
                    &ctx.dispatcher,
                    &stop,
                    ctx.config.job_chunk,
                    Duration::from_millis(ctx.config.job_chunk_deadline_ms),
                );
            }));
        }
        {
            let ctx = Arc::clone(&ctx);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || accept_loop(listener, ctx, stop)));
        }
        fd_obs::event(
            fd_obs::Level::Info,
            "router.start",
            &[
                ("addr", fd_obs::Value::Str(addr.to_string())),
                ("shards", ctx.config.topology.shard_count().into()),
                ("replicas", ctx.config.topology.replica_count().into()),
            ],
        );
        Ok(Self { addr, stop, threads })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown has been requested (for supervision loops).
    pub fn is_shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests shutdown without joining (signal-handler friendly).
    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }

    /// Stops accepting, wakes the loops, and joins every thread.
    /// In-flight requests complete (handlers poll the flag between
    /// requests, not during one).
    pub fn shutdown(mut self) {
        self.request_shutdown();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        fd_obs::event(fd_obs::Level::Info, "router.stop", &[]);
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<Ctx>, stop: Arc<AtomicBool>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        fd_obs::counter("router.connections").inc();
        let ctx = Arc::clone(&ctx);
        let stop = Arc::clone(&stop);
        handlers.push(std::thread::spawn(move || handle_connection(stream, &ctx, &stop)));
        handlers.retain(|h| !h.is_finished());
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

#[derive(Serialize)]
struct ErrorBody {
    error: String,
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&ErrorBody { error: message.to_string() })
        .unwrap_or_else(|_| "{}".into())
}

/// RAII admission slot; holds one unit of the router's bounded
/// in-flight budget.
struct Slot<'a>(&'a AtomicUsize);

impl<'a> Slot<'a> {
    /// Takes a slot unless `bound` are already held.
    fn acquire(inflight: &'a AtomicUsize, bound: usize) -> Option<Self> {
        let mut current = inflight.load(Ordering::Relaxed);
        loop {
            if current >= bound {
                return None;
            }
            match inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Slot(inflight)),
                Err(actual) => current = actual,
            }
        }
    }
}

impl Drop for Slot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let latency_hist =
        fd_obs::histogram("router.request_us", &fd_obs::exponential_buckets(50.0, 4.0, 12));
    loop {
        let request = match read_request(&mut stream, ctx.config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(HttpError::Closed | HttpError::Io(_)) => return,
            Err(e @ (HttpError::HeadTooLarge | HttpError::BodyTooLarge(_))) => {
                let _ = write_response_ext(
                    &mut stream,
                    413,
                    &error_body(&e.to_string()),
                    false,
                    "application/json",
                    &[],
                );
                return;
            }
            Err(e @ HttpError::Malformed(_)) => {
                let _ = write_response_ext(
                    &mut stream,
                    400,
                    &error_body(&e.to_string()),
                    false,
                    "application/json",
                    &[],
                );
                return;
            }
        };
        fd_obs::counter("router.requests").inc();
        let trace = match request.request_id.as_deref() {
            Some(id) => TraceCtx::from_request_id(id),
            None => TraceCtx::root(),
        };
        // The id forwarded upstream: the shard derives the *same* trace
        // id from it, so one request is one trace across processes.
        let forward_id = request.request_id.clone().unwrap_or_else(|| trace.trace_hex());
        let started = Instant::now();
        let route_start_us = fd_obs::trace::now_us();
        let (status, body, content_type, extra) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(ctx, &request, &forward_id)
            }))
            .unwrap_or_else(|_| {
                fd_obs::counter("router.handler_panics").inc();
                (500, error_body("internal error"), "application/json", vec![])
            });
        latency_hist.record(started.elapsed().as_secs_f64() * 1e6);
        match status {
            429 => fd_obs::counter("router.responses_429").inc(),
            504 => fd_obs::counter("router.responses_504").inc(),
            _ => {}
        }
        if status >= 500 {
            fd_obs::counter("router.responses_5xx").inc();
        } else if status >= 400 {
            fd_obs::counter("router.responses_4xx").inc();
        } else {
            fd_obs::counter("router.responses_2xx").inc();
        }
        if trace.sampled {
            let end_us = fd_obs::trace::now_us();
            trace.record("route", route_start_us, end_us.saturating_sub(route_start_us));
        }
        let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
        let mut headers: Vec<(&str, &str)> = vec![("x-request-id", &forward_id)];
        headers.extend(extra.iter().map(|(k, v): &(String, String)| (k.as_str(), v.as_str())));
        let write_ok =
            write_response_ext(&mut stream, status, &body, keep_alive, content_type, &headers)
                .is_ok();
        if !write_ok || !keep_alive {
            return;
        }
    }
}

type Response = (u16, String, &'static str, Vec<(String, String)>);

fn json(status: u16, body: String) -> Response {
    (status, body, "application/json", vec![])
}

/// Maps a dispatch outcome to the client's response, attributing
/// shed/timeout responses to the shard they came from.
fn outcome_response(outcome: Outcome, shard: usize) -> Response {
    match outcome {
        Outcome::Replied { status, body, retry_after } => {
            if status == 429 {
                fd_obs::counter(&format!("router.shard_429.s{shard}")).inc();
            }
            if status == 504 {
                fd_obs::counter(&format!("router.shard_504.s{shard}")).inc();
            }
            let headers = match retry_after {
                Some(value) => vec![("retry-after".to_string(), value)],
                None => vec![],
            };
            (status, body, "application/json", headers)
        }
        Outcome::DeadlineExceeded => {
            fd_obs::counter(&format!("router.shard_504.s{shard}")).inc();
            json(504, error_body("routing deadline exceeded"))
        }
        Outcome::Unavailable { detail } => {
            fd_obs::counter("router.responses_502").inc();
            json(502, error_body(&format!("no replica available: {detail}")))
        }
    }
}

/// The router's own 429: the bounded in-flight queue is full.
/// `Retry-After` estimates one mean request duration — roughly when a
/// slot frees up.
fn shed_response() -> Response {
    fd_obs::counter("router.shed").inc();
    let hist = fd_obs::histogram("router.request_us", &fd_obs::exponential_buckets(50.0, 4.0, 12));
    let mean_us = if hist.count() > 0 { hist.sum() / hist.count() as f64 } else { 0.0 };
    let secs = ((mean_us / 1e6).ceil() as u64).clamp(1, 30);
    (
        429,
        error_body("router at capacity, retry later"),
        "application/json",
        vec![("retry-after".to_string(), secs.to_string())],
    )
}

fn route(ctx: &Ctx, request: &Request, forward_id: &str) -> Response {
    let path = request.path.split('?').next().unwrap_or(&request.path);
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => json(200, health_body(ctx)),
        ("GET", "/metrics") => {
            let query = request.path.split_once('?').map(|(_, q)| q);
            if query.is_some_and(|q| q.split('&').any(|p| p == "format=json")) {
                json(200, fd_obs::snapshot())
            } else {
                (200, fd_obs::prometheus_text(), fd_obs::PROMETHEUS_CONTENT_TYPE, vec![])
            }
        }
        ("POST", "/v1/predict") => {
            let Some(_slot) = Slot::acquire(&ctx.inflight, ctx.config.inflight_bound) else {
                return shed_response();
            };
            predict(ctx, &request.body, forward_id)
        }
        ("POST", "/v1/predict_batch") => {
            let Some(_slot) = Slot::acquire(&ctx.inflight, ctx.config.inflight_bound) else {
                return shed_response();
            };
            predict_batch(ctx, &request.body, forward_id)
        }
        ("POST", "/v1/jobs") => submit_job(ctx, &request.body),
        ("GET", "/v1/jobs") => match &ctx.jobs {
            Some(jobs) => {
                let list = jobs.list();
                json(
                    200,
                    format!(
                        "{{\"jobs\":{}}}",
                        serde_json::to_string(&list).unwrap_or_else(|_| "[]".into())
                    ),
                )
            }
            None => json(404, error_body("job queue disabled: start the router with --spool-dir")),
        },
        ("GET", jobs_path) if jobs_path.starts_with("/v1/jobs/") => {
            job_query(ctx, &jobs_path["/v1/jobs/".len()..])
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/predict" | "/v1/predict_batch" | "/v1/jobs",
        ) => json(405, error_body("method not allowed")),
        (_, other) => json(404, error_body(&format!("no such endpoint: {other}"))),
    }
}

fn predict(ctx: &Ctx, body: &[u8], forward_id: &str) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return json(400, error_body("body is not UTF-8"));
    };
    // Routing key: by-id requests must reach the owning shard (the
    // worker 421s a miss); inductive requests can go anywhere, keyed
    // for load spread and retry affinity.
    let shard = match wire::usize_value(text, "id") {
        Some(id) => ctx.dispatcher.topology().shard_of_id(id),
        None => ctx.dispatcher.topology().shard_of_inductive(
            wire::usize_value(text, "creator"),
            wire::raw_string_value(text, "text").unwrap_or(""),
        ),
    };
    let deadline = Instant::now() + Duration::from_millis(ctx.config.deadline_ms);
    let outcome = ctx.dispatcher.dispatch(shard, "/v1/predict", text, forward_id, deadline);
    outcome_response(outcome, shard)
}

fn predict_batch(ctx: &Ctx, body: &[u8], forward_id: &str) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return json(400, error_body("body is not UTF-8"));
    };
    let Some(elements) = wire::raw_value(text, "requests").and_then(wire::array_elements) else {
        return json(400, error_body("invalid request body: requests must be a JSON array"));
    };
    if elements.is_empty() {
        return json(400, error_body("requests array is empty"));
    }
    let shards = ctx.dispatcher.topology().shard_count();
    let deadline = Instant::now() + Duration::from_millis(ctx.config.deadline_ms);
    // Contiguous chunks, one per shard, preserving order — batch items
    // are inductive (the worker rejects by-id in batches), so any shard
    // can score any chunk and the split is purely for parallelism.
    let per_shard = elements.len().div_ceil(shards);
    let chunks: Vec<(usize, String)> = elements
        .chunks(per_shard)
        .enumerate()
        .map(|(shard, chunk)| (shard, format!("{{\"requests\":[{}]}}", chunk.join(","))))
        .collect();
    let replies: Vec<(usize, Outcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|(shard, chunk_body)| {
                let shard = *shard;
                let forward_id = format!("{forward_id}-b{shard}");
                let dispatcher = &ctx.dispatcher;
                scope.spawn(move || {
                    (
                        shard,
                        dispatcher.dispatch(
                            shard,
                            "/v1/predict_batch",
                            chunk_body,
                            &forward_id,
                            deadline,
                        ),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("batch chunk thread")).collect()
    });
    // Merge: relay the first non-200 as the batch's answer; otherwise
    // splice the chunks' raw result slices back together in order.
    let mut replies = replies;
    if let Some(failed) = replies
        .iter()
        .position(|(_, outcome)| !matches!(outcome, Outcome::Replied { status: 200, .. }))
    {
        let (shard, outcome) = replies.swap_remove(failed);
        return outcome_response(outcome, shard);
    }
    let mut mode_and_labels: Option<(&str, &str)> = None;
    let mut merged: Vec<&str> = Vec::with_capacity(elements.len());
    for (shard, outcome) in &replies {
        let Outcome::Replied { body, .. } = outcome else {
            unreachable!("non-200 chunks were surfaced above");
        };
        let Some(results) = wire::raw_value(body, "results").and_then(wire::array_elements) else {
            return json(502, error_body(&format!("shard {shard}: malformed batch response")));
        };
        if mode_and_labels.is_none() {
            mode_and_labels = Some((
                wire::raw_value(body, "mode").unwrap_or("\"unknown\""),
                wire::raw_value(body, "labels").unwrap_or("[]"),
            ));
        }
        merged.extend(results);
    }
    if merged.len() != elements.len() {
        return json(
            502,
            error_body(&format!("{} results for {} requests", merged.len(), elements.len())),
        );
    }
    let (mode, labels) = mode_and_labels.unwrap_or(("\"unknown\"", "[]"));
    json(
        200,
        format!("{{\"mode\":{mode},\"labels\":{labels},\"results\":[{}]}}", merged.join(",")),
    )
}

fn submit_job(ctx: &Ctx, body: &[u8]) -> Response {
    let Some(jobs) = &ctx.jobs else {
        return json(404, error_body("job queue disabled: start the router with --spool-dir"));
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return json(400, error_body("body is not UTF-8"));
    };
    let Some(requests) = wire::raw_value(text, "requests") else {
        return json(400, error_body("invalid request body: missing requests array"));
    };
    match jobs.submit(requests) {
        Ok(status) => json(202, serde_json::to_string(&status).unwrap_or_else(|_| "{}".into())),
        Err(e) => json(400, error_body(&e)),
    }
}

fn job_query(ctx: &Ctx, rest: &str) -> Response {
    let Some(jobs) = &ctx.jobs else {
        return json(404, error_body("job queue disabled: start the router with --spool-dir"));
    };
    match rest.split_once('/') {
        None => match jobs.status(rest) {
            Some(status) => {
                json(200, serde_json::to_string(&status).unwrap_or_else(|_| "{}".into()))
            }
            None => json(404, error_body(&format!("no such job: {rest}"))),
        },
        Some((id, "results")) => match jobs.results(id) {
            Ok(record) => json(200, record),
            Err((status, message)) => json(status, error_body(&message)),
        },
        Some(_) => json(404, error_body("no such endpoint")),
    }
}

#[derive(Serialize)]
struct ReplicaHealth {
    shard: usize,
    replica: usize,
    addr: String,
    breaker: String,
    up: f64,
}

#[derive(Serialize)]
struct RouterHealth {
    status: String,
    role: String,
    shards: usize,
    replicas: Vec<ReplicaHealth>,
    retry_budget: f64,
    inflight: usize,
    jobs: usize,
}

fn health_body(ctx: &Ctx) -> String {
    let replicas = ctx
        .dispatcher
        .all_replicas()
        .map(|replica| ReplicaHealth {
            shard: replica.shard,
            replica: replica.index,
            addr: replica.client.addr().to_string(),
            breaker: replica.breaker.state_name().to_string(),
            up: fd_obs::gauge(&format!("router.replica_up.{}", replica.tag())).get(),
        })
        .collect();
    let health = RouterHealth {
        status: "ok".into(),
        role: "router".into(),
        shards: ctx.dispatcher.topology().shard_count(),
        replicas,
        retry_budget: ctx.dispatcher.budget.balance(),
        inflight: ctx.inflight.load(Ordering::Relaxed),
        jobs: ctx.jobs.as_ref().map(|jobs| jobs.list().len()).unwrap_or(0),
    };
    serde_json::to_string(&health).unwrap_or_else(|_| "{}".into())
}

//! A pooled keep-alive HTTP client for one upstream replica.
//!
//! Each replica gets a small pool of keep-alive connections shared by
//! the router's handler threads; a request checks a connection out,
//! uses it with a per-attempt timeout, and returns it on success. Any
//! transport error discards the connection — the next request dials
//! fresh, which is also how the pool sheds connections to a replica
//! that died and came back.

use fd_serve::http::{FullResponse, HttpClient};
use std::io;
use std::sync::Mutex;
use std::time::Duration;

/// Connections kept per replica beyond which extras are dropped on
/// return. Sized for the router's worker parallelism, not peak
/// connections — bursts just dial extra sockets that close after use.
const POOL_CAP: usize = 16;

/// The checkout/return pool for one replica address.
pub struct ReplicaClient {
    addr: String,
    pool: Mutex<Vec<HttpClient>>,
}

impl ReplicaClient {
    /// A pool for `addr`; no connection is dialled until first use.
    pub fn new(addr: &str) -> Self {
        Self { addr: addr.to_string(), pool: Mutex::new(Vec::new()) }
    }

    /// The replica's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn checkout(&self, timeout: Duration) -> io::Result<(HttpClient, bool)> {
        let pooled =
            self.pool.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).pop();
        match pooled {
            Some(mut client) => {
                client.set_timeout(timeout)?;
                Ok((client, true))
            }
            None => Ok((HttpClient::connect_timeout(&self.addr, timeout)?, false)),
        }
    }

    fn put_back(&self, client: HttpClient) {
        let mut pool = self.pool.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if pool.len() < POOL_CAP {
            pool.push(client);
        }
    }

    /// `POST path` with a JSON body and extra headers under `timeout`.
    /// A failure on a *reused* connection retries once on a fresh dial
    /// — the server may simply have closed an idle keep-alive socket,
    /// which is not a replica failure and must not read as one.
    pub fn post(
        &self,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
        timeout: Duration,
    ) -> io::Result<FullResponse> {
        let (mut client, reused) = self.checkout(timeout)?;
        match client.post_with_headers(path, body, headers) {
            Ok(response) => {
                self.put_back(client);
                Ok(response)
            }
            Err(_) if reused => {
                let mut fresh = HttpClient::connect_timeout(&self.addr, timeout)?;
                let response = fresh.post_with_headers(path, body, headers)?;
                self.put_back(fresh);
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }

    /// `GET path` under `timeout`; same stale-keep-alive retry as
    /// [`Self::post`].
    pub fn get(&self, path: &str, timeout: Duration) -> io::Result<FullResponse> {
        let (mut client, reused) = self.checkout(timeout)?;
        match client.get_with_headers(path) {
            Ok(response) => {
                self.put_back(client);
                Ok(response)
            }
            Err(_) if reused => {
                let mut fresh = HttpClient::connect_timeout(&self.addr, timeout)?;
                let response = fresh.get_with_headers(path)?;
                self.put_back(fresh);
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }
}

//! The retry budget: a token bucket that caps retries + hedges as a
//! fraction of initial request volume.
//!
//! Unbounded retries turn a brown-out into a blackout: when a tier
//! degrades, every client retry multiplies the offered load exactly
//! when capacity is lowest (a retry storm). The budget makes the
//! multiplier explicit — each *initial* request deposits `ratio`
//! tokens (default 0.1), each retry or hedge withdraws one whole
//! token, so sustained retry volume cannot exceed `ratio` × request
//! volume. A small constant reserve keeps failover alive at low
//! traffic, where ratio-proportional income alone would round to
//! nothing.
//!
//! Token arithmetic is integer milli-tokens in one atomic, so the hot
//! path is a compare-exchange loop with no lock.

use std::sync::atomic::{AtomicI64, Ordering};

/// Milli-tokens per whole token.
const MILLI: i64 = 1000;

/// A token-bucket retry budget. Thread-safe and lock-free.
pub struct RetryBudget {
    tokens_milli: AtomicI64,
    cap_milli: i64,
    deposit_milli: i64,
}

impl RetryBudget {
    /// A budget granting `ratio` retries per initial request (e.g.
    /// 0.1 = at most ~10% retry volume), holding at most `cap` banked
    /// tokens, starting with `reserve` tokens so cold-start failovers
    /// are not starved. `cap` also bounds the burst after an idle
    /// period.
    pub fn new(ratio: f64, cap: f64, reserve: f64) -> Self {
        assert!(ratio >= 0.0 && cap >= 0.0 && reserve >= 0.0, "budget parameters must be >= 0");
        let cap_milli = (cap * MILLI as f64) as i64;
        Self {
            tokens_milli: AtomicI64::new(((reserve * MILLI as f64) as i64).min(cap_milli)),
            cap_milli,
            deposit_milli: (ratio * MILLI as f64) as i64,
        }
    }

    /// Credits one initial (non-retry) request.
    pub fn on_request(&self) {
        if self.deposit_milli == 0 {
            return;
        }
        // Saturating add up to the cap; a CAS loop because fetch_add
        // could overshoot and a later withdraw would then see phantom
        // tokens.
        let mut current = self.tokens_milli.load(Ordering::Relaxed);
        loop {
            let next = (current + self.deposit_milli).min(self.cap_milli);
            if next == current {
                return;
            }
            match self.tokens_milli.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Tries to withdraw one token for a retry or hedge; `false` means
    /// the budget is exhausted and the caller must not retry.
    pub fn try_withdraw(&self) -> bool {
        let mut current = self.tokens_milli.load(Ordering::Relaxed);
        loop {
            if current < MILLI {
                fd_obs::counter("router.retry_budget_exhausted").inc();
                return false;
            }
            match self.tokens_milli.compare_exchange_weak(
                current,
                current - MILLI,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Whole tokens currently banked (for `/healthz` and metrics).
    pub fn balance(&self) -> f64 {
        self.tokens_milli.load(Ordering::Relaxed) as f64 / MILLI as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_funds_cold_start_retries() {
        let b = RetryBudget::new(0.1, 100.0, 3.0);
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "reserve spent, no income yet");
    }

    #[test]
    fn income_is_proportional_to_requests() {
        let b = RetryBudget::new(0.1, 100.0, 0.0);
        for _ in 0..10 {
            b.on_request();
        }
        assert!(b.try_withdraw(), "10 requests at 0.1 fund one retry");
        assert!(!b.try_withdraw(), "…and only one");
    }

    #[test]
    fn cap_bounds_the_banked_burst() {
        let b = RetryBudget::new(1.0, 2.0, 0.0);
        for _ in 0..100 {
            b.on_request();
        }
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "cap is 2 regardless of idle income");
        assert_eq!(b.balance(), 0.0);
    }

    #[test]
    fn zero_ratio_never_funds_retries() {
        let b = RetryBudget::new(0.0, 10.0, 0.0);
        for _ in 0..1000 {
            b.on_request();
        }
        assert!(!b.try_withdraw());
    }

    #[test]
    fn concurrent_withdrawals_never_overdraw() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let b = Arc::new(RetryBudget::new(0.0, 100.0, 50.0));
        let granted = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            let granted = Arc::clone(&granted);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    if b.try_withdraw() {
                        granted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(granted.load(Ordering::Relaxed), 50, "exactly the reserve, no overdraw");
    }
}

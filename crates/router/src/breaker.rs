//! Per-replica circuit breaker: closed → open → half-open → closed.
//!
//! A replica that fails `threshold` consecutive attempts is *open* for
//! `open_for`: dispatch skips it entirely, shedding its traffic to the
//! shard's sibling replicas instead of burning each request's deadline
//! rediscovering that the replica is dead. When the window lapses the
//! breaker turns *half-open* and admits exactly one probe; a probe
//! success closes the breaker, a failure re-opens it for another
//! window. The health prober's periodic `/healthz` poll doubles as the
//! probe, so a restarted replica rejoins within one probe interval
//! without any client request having to gamble on it.
//!
//! All transitions happen under one small mutex — breaker decisions are
//! a few nanoseconds against milliseconds of network I/O.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    /// `probe_started` is the in-flight probe's start time; a probe
    /// that never reports back (e.g. its thread died) expires after
    /// `open_for`, releasing the slot to the next caller.
    HalfOpen { probe_started: Option<Instant> },
}

/// What [`Breaker::admit`] decided for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Closed: attempt normally.
    Yes,
    /// Half-open: this caller holds the single probe slot — its
    /// success/failure report decides the breaker's next state.
    Probe,
    /// Open (or half-open with a probe already in flight): skip this
    /// replica.
    No,
}

/// A per-replica circuit breaker. Thread-safe; cheap to `admit`.
pub struct Breaker {
    state: std::sync::Mutex<State>,
    threshold: u32,
    open_for: Duration,
}

impl Breaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures and stays open for `open_for` per trip.
    pub fn new(threshold: u32, open_for: Duration) -> Self {
        assert!(threshold >= 1, "breaker threshold must be at least 1");
        Self {
            state: std::sync::Mutex::new(State::Closed { consecutive_failures: 0 }),
            threshold,
            open_for,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Asks to attempt a request against this replica.
    pub fn admit(&self) -> Admit {
        let mut st = self.lock();
        match *st {
            State::Closed { .. } => Admit::Yes,
            State::Open { until } => {
                if Instant::now() >= until {
                    *st = State::HalfOpen { probe_started: Some(Instant::now()) };
                    Admit::Probe
                } else {
                    Admit::No
                }
            }
            State::HalfOpen { probe_started } => match probe_started {
                // A stuck probe (never reported) expires; hand the slot on.
                Some(started) if started.elapsed() < self.open_for => Admit::No,
                _ => {
                    *st = State::HalfOpen { probe_started: Some(Instant::now()) };
                    Admit::Probe
                }
            },
        }
    }

    /// Reports a successful attempt: resets the failure streak; a
    /// half-open probe success closes the breaker. A success while
    /// still *open* is ignored — it can only be a stale in-flight
    /// response from before the trip, and recovery must go through the
    /// half-open probe.
    pub fn record_success(&self) {
        let mut st = self.lock();
        match *st {
            State::Closed { .. } => *st = State::Closed { consecutive_failures: 0 },
            State::HalfOpen { .. } => *st = State::Closed { consecutive_failures: 0 },
            State::Open { .. } => {}
        }
    }

    /// Reports a failed attempt: extends the streak (tripping open at
    /// `threshold`); a half-open probe failure re-opens immediately.
    pub fn record_failure(&self) {
        let mut st = self.lock();
        match *st {
            State::Closed { consecutive_failures } => {
                let failures = consecutive_failures + 1;
                if failures >= self.threshold {
                    fd_obs::counter("router.breaker_opens").inc();
                    *st = State::Open { until: Instant::now() + self.open_for };
                } else {
                    *st = State::Closed { consecutive_failures: failures };
                }
            }
            State::HalfOpen { .. } => {
                fd_obs::counter("router.breaker_opens").inc();
                *st = State::Open { until: Instant::now() + self.open_for };
            }
            State::Open { .. } => {}
        }
    }

    /// The state name for metrics/health: `closed`, `open`, or
    /// `half-open`.
    pub fn state_name(&self) -> &'static str {
        match *self.lock() {
            State::Closed { .. } => "closed",
            State::Open { until } if Instant::now() < until => "open",
            // An expired open window reads as half-open: the next admit
            // will hand out the probe.
            State::Open { .. } | State::HalfOpen { .. } => "half-open",
        }
    }

    /// Numeric state for the Prometheus gauge: 0 closed, 1 open, 2
    /// half-open.
    pub fn state_code(&self) -> u8 {
        match self.state_name() {
            "closed" => 0,
            "open" => 1,
            _ => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, open_ms: u64) -> Breaker {
        Breaker::new(threshold, Duration::from_millis(open_ms))
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = breaker(3, 10_000);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.admit(), Admit::Yes, "below threshold stays closed");
        b.record_failure();
        assert_eq!(b.admit(), Admit::No, "third consecutive failure trips it");
        assert_eq!(b.state_name(), "open");
    }

    #[test]
    fn success_resets_the_streak() {
        let b = breaker(3, 10_000);
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.admit(), Admit::Yes, "streak broke; still closed");
    }

    #[test]
    fn half_open_admits_one_probe_then_closes_on_success() {
        let b = breaker(1, 5);
        b.record_failure();
        assert_eq!(b.admit(), Admit::No);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(b.admit(), Admit::Probe, "window lapsed → one probe");
        assert_eq!(b.admit(), Admit::No, "second caller is not a probe");
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.admit(), Admit::Yes);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = breaker(1, 5);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(b.admit(), Admit::Probe);
        b.record_failure();
        assert_eq!(b.admit(), Admit::No, "probe failed → open again");
        assert_eq!(b.state_name(), "open");
    }

    #[test]
    fn stale_success_does_not_close_an_open_breaker() {
        let b = breaker(1, 10_000);
        b.record_failure();
        b.record_success();
        assert_eq!(b.admit(), Admit::No, "must recover via half-open, not a stale success");
    }

    #[test]
    fn stuck_probe_slot_expires() {
        let b = breaker(1, 5);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(b.admit(), Admit::Probe);
        // The probe holder never reports; after open_for the slot frees.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(b.admit(), Admit::Probe, "expired probe slot is handed on");
    }
}

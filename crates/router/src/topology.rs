//! Tier layout and routing keys.
//!
//! A topology is `N` shards × `M` replicas, written on the command line
//! as shard groups separated by `;` with replica addresses separated by
//! `,`:
//!
//! ```text
//! --shards 127.0.0.1:7871,127.0.0.1:7872;127.0.0.1:7881,127.0.0.1:7882
//! ```
//!
//! is 2 shards × 2 replicas. Shard `i` *owns* the entities whose
//! `id % shards == i` — the same arithmetic `fdctl serve --shard i/n`
//! enforces on the worker side (421 on a miss), so a router/worker
//! disagreement is caught loudly rather than silently double-serving.
//!
//! Inductive requests (scoring new text that is not in the graph) have
//! no id; they route by the creator id when the request names one —
//! keeping an author's traffic on the shard that owns the author — and
//! otherwise by an FNV-1a hash of the text, which spreads anonymous
//! traffic uniformly while keeping retries of the same request on the
//! same shard.

/// One shard: the addresses of its replicas, all serving identical
/// state (every worker loads the full corpus; sharding scopes
/// *ownership*, not data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Replica addresses, e.g. `127.0.0.1:7871`.
    pub replicas: Vec<String>,
}

/// The parsed tier layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Shards in index order; `shards[i]` owns ids with `id % n == i`.
    pub shards: Vec<Shard>,
}

impl Topology {
    /// Parses the `--shards` syntax: `;`-separated shard groups of
    /// `,`-separated replica addresses. Every shard must have at least
    /// one replica and every address must be `host:port`-shaped.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut shards = Vec::new();
        for (i, group) in spec.split(';').enumerate() {
            let replicas: Vec<String> = group
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_string)
                .collect();
            if replicas.is_empty() {
                return Err(format!("shard {i} has no replica addresses"));
            }
            for addr in &replicas {
                let Some((host, port)) = addr.rsplit_once(':') else {
                    return Err(format!("shard {i}: address {addr:?} is not host:port"));
                };
                if host.is_empty() || port.parse::<u16>().is_err() {
                    return Err(format!("shard {i}: address {addr:?} is not host:port"));
                }
            }
            shards.push(Shard { replicas });
        }
        if shards.is_empty() {
            return Err("topology has no shards".to_string());
        }
        Ok(Self { shards })
    }

    /// Shard count `n` in the `id % n` ownership rule.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns entity `id`.
    pub fn shard_of_id(&self, id: usize) -> usize {
        id % self.shards.len()
    }

    /// The shard an inductive request routes to: the creator's owner
    /// when the request names one, else a uniform hash of the text.
    pub fn shard_of_inductive(&self, creator: Option<usize>, text: &str) -> usize {
        match creator {
            Some(id) => self.shard_of_id(id),
            None => (fnv1a(text.as_bytes()) % self.shards.len() as u64) as usize,
        }
    }

    /// Total replica count across all shards.
    pub fn replica_count(&self) -> usize {
        self.shards.iter().map(|s| s.replicas.len()).sum()
    }
}

/// FNV-1a — tiny, dependency-free, and stable across processes, which
/// is all a routing hash needs (no adversarial-collision concerns: a
/// collision just means two texts share a shard).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_by_two() {
        let t = Topology::parse("a:1,b:2;c:3,d:4").unwrap();
        assert_eq!(t.shard_count(), 2);
        assert_eq!(t.shards[0].replicas, vec!["a:1", "b:2"]);
        assert_eq!(t.shards[1].replicas, vec!["c:3", "d:4"]);
        assert_eq!(t.replica_count(), 4);
    }

    #[test]
    fn parses_single_shard_single_replica() {
        let t = Topology::parse("127.0.0.1:7878").unwrap();
        assert_eq!(t.shard_count(), 1);
        assert_eq!(t.replica_count(), 1);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(Topology::parse("").is_err());
        assert!(Topology::parse("a:1;;b:2").is_err(), "empty shard group");
        assert!(Topology::parse("no-port").is_err());
        assert!(Topology::parse("host:notaport").is_err());
        assert!(Topology::parse(":7878").is_err(), "empty host");
    }

    #[test]
    fn id_ownership_matches_modulo() {
        let t = Topology::parse("a:1;b:2;c:3").unwrap();
        for id in 0..30 {
            assert_eq!(t.shard_of_id(id), id % 3);
        }
    }

    #[test]
    fn inductive_routing_prefers_creator_and_is_stable() {
        let t = Topology::parse("a:1;b:2").unwrap();
        assert_eq!(t.shard_of_inductive(Some(7), "anything"), 7 % 2);
        let by_text = t.shard_of_inductive(None, "some article text");
        assert_eq!(by_text, t.shard_of_inductive(None, "some article text"), "stable");
        assert!(by_text < 2);
    }
}

//! **fd-router** — the sharded serving tier's front door.
//!
//! One router process (`fdctl route`) in front of N shards × M
//! replicas of `fdctl serve --shard i/n`, built on the same std-only
//! HTTP plumbing as fd-serve. The pieces:
//!
//! 1. [`topology`] — the tier layout and routing keys. Shard `i` owns
//!    entities with `id % n == i` (the worker enforces the same rule
//!    with a 421, so router/worker disagreement fails loudly);
//!    inductive requests route by creator id or text hash purely for
//!    load spread, since every worker holds the full read-only corpus
//!    and any replica's answer is bitwise-identical.
//! 2. [`breaker`] — per-replica circuit breakers (closed → open →
//!    half-open) so a dead replica sheds to its sibling instead of
//!    burning each request's deadline.
//! 3. [`budget`] — the token-bucket retry budget: retries and hedges
//!    are paid for at ~10% of request volume, which is what prevents
//!    a brown-out from amplifying into a retry storm.
//! 4. [`dispatch`] — failover dispatch: round-robin replica choice,
//!    per-attempt timeouts, exponential backoff + jitter, one hedged
//!    attempt for slow replicas, plus the active `/healthz` prober
//!    that walks breakers back from half-open.
//! 5. [`jobs`] — the async bulk-scoring queue (`POST /v1/jobs` →
//!    poll → fetch results), spooled with fd-ckpt's
//!    temp-fsync-rename discipline so a router restart re-runs
//!    acknowledged jobs instead of losing them.
//! 6. [`server`] — the router HTTP server: admission control (bounded
//!    in-flight → 429 + `Retry-After`), deadline → 504, raw-JSON
//!    splicing for bitwise-faithful `predict_batch` merges, and
//!    trace propagation (the forwarded `X-Request-Id` makes router,
//!    shard, and batcher spans one trace).
//! 7. [`wire`] — the raw-JSON scanners the splicing rests on.
//!
//! Failure semantics, tuning guidance, and the full endpoint schema
//! live in the repository's OPERATIONS.md ("Distributed serving") and
//! DESIGN.md (failover state machines).

pub mod breaker;
pub mod budget;
pub mod client;
pub mod dispatch;
pub mod jobs;
pub mod server;
pub mod topology;
pub mod wire;

pub use breaker::{Admit, Breaker};
pub use budget::RetryBudget;
pub use client::ReplicaClient;
pub use dispatch::{DispatchConfig, Dispatcher, Outcome, Replica};
pub use jobs::{JobState, JobStatus, JobStore};
pub use server::{Router, RouterConfig};
pub use topology::{Shard, Topology};

//! Failover dispatch: replica choice, hedged retries, backoff, and the
//! health prober.
//!
//! One request to shard `s` walks the shard's replicas starting from a
//! round-robin cursor, skipping any whose [`Breaker`] is open. The
//! first attempt is free; everything after it — a retry after a failed
//! attempt, or a *hedge* launched when the first attempt is still
//! silent past the hedge delay — withdraws from the shared
//! [`RetryBudget`], so a degraded tier sheds load instead of
//! amplifying it. Attempts run under a per-attempt timeout and retries
//! back off exponentially with jitter, all bounded by the request's
//! overall deadline.
//!
//! Outcome semantics the router maps to HTTP: an upstream *reply* is
//! relayed verbatim (the shard's status is the client's status);
//! transport-level exhaustion is 502; running out the deadline is 504.

use crate::breaker::{Admit, Breaker};
use crate::budget::RetryBudget;
use crate::client::ReplicaClient;
use crate::topology::Topology;
use fd_serve::http::FullResponse;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Failure-handling tunables (see OPERATIONS.md for guidance).
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Per-attempt timeout: connect + request + response.
    pub attempt_timeout: Duration,
    /// How long the first attempt may stay silent before a hedge races
    /// a sibling replica (budget permitting).
    pub hedge_delay: Duration,
    /// Total attempts per request, the initial one included.
    pub max_attempts: usize,
    /// First retry backoff; doubles per retry, ±50% jitter.
    pub backoff_base: Duration,
    /// Consecutive failures that trip a replica's breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before half-open.
    pub breaker_open: Duration,
    /// Retry + hedge tokens earned per initial request.
    pub retry_ratio: f64,
    /// Token-bucket cap (bounds the post-idle retry burst).
    pub retry_cap: f64,
    /// Starting balance so cold-start failovers are funded.
    pub retry_reserve: f64,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        Self {
            attempt_timeout: Duration::from_millis(2_000),
            hedge_delay: Duration::from_millis(300),
            max_attempts: 3,
            backoff_base: Duration::from_millis(25),
            breaker_threshold: 3,
            breaker_open: Duration::from_millis(1_000),
            retry_ratio: 0.1,
            retry_cap: 100.0,
            retry_reserve: 10.0,
        }
    }
}

/// One replica's client + breaker, shared with attempt threads.
pub struct Replica {
    /// Shard index (for metric names).
    pub shard: usize,
    /// Replica index within the shard.
    pub index: usize,
    /// Pooled connections to this replica.
    pub client: ReplicaClient,
    /// This replica's circuit breaker.
    pub breaker: Breaker,
}

impl Replica {
    /// `s<shard>r<index>` — the metric-name suffix for this replica.
    pub fn tag(&self) -> String {
        format!("s{}r{}", self.shard, self.index)
    }
}

/// How one dispatched request ended.
#[derive(Debug)]
pub enum Outcome {
    /// An upstream replica replied; relay status/body (and Retry-After,
    /// when present) verbatim.
    Replied { status: u16, body: String, retry_after: Option<String> },
    /// No reply and no time left.
    DeadlineExceeded,
    /// All admissible attempts failed at the transport level (or every
    /// breaker was open) with deadline to spare.
    Unavailable { detail: String },
}

/// The dispatcher: topology + per-replica state + the shared retry
/// budget. One per router process.
pub struct Dispatcher {
    topology: Topology,
    /// `replicas[shard][index]`, `Arc`d so attempt threads can outlive
    /// the dispatching request (a lost hedge just finishes quietly).
    replicas: Vec<Vec<Arc<Replica>>>,
    /// The shared (router-wide) retry/hedge budget.
    pub budget: RetryBudget,
    config: DispatchConfig,
    cursor: Vec<AtomicUsize>,
    jitter: AtomicU64,
}

/// What one attempt thread reports back.
struct AttemptReport {
    result: std::io::Result<FullResponse>,
}

/// Upstream statuses worth a failover retry: overload (429), server
/// faults (500/502/503), and a shard that ran out its own deadline
/// (504). Everything else — 2xx, client errors, 421 shard-math
/// disagreements — is the request's real answer.
fn retryable_status(status: u16) -> bool {
    matches!(status, 429 | 500 | 502 | 503 | 504)
}

/// Statuses that count against the replica's breaker. 429 does not: a
/// full queue is a *healthy* replica telling us to back off, and
/// tripping its breaker would shed even more load onto its sibling.
fn breaker_failure_status(status: u16) -> bool {
    matches!(status, 500 | 502 | 503 | 504)
}

impl Dispatcher {
    /// Builds per-replica breakers/pools for `topology`.
    pub fn new(topology: Topology, config: DispatchConfig) -> Self {
        let replicas = topology
            .shards
            .iter()
            .enumerate()
            .map(|(shard, s)| {
                s.replicas
                    .iter()
                    .enumerate()
                    .map(|(index, addr)| {
                        Arc::new(Replica {
                            shard,
                            index,
                            client: ReplicaClient::new(addr),
                            breaker: Breaker::new(config.breaker_threshold, config.breaker_open),
                        })
                    })
                    .collect()
            })
            .collect();
        let cursor = (0..topology.shard_count()).map(|_| AtomicUsize::new(0)).collect();
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 | 1)
            .unwrap_or(0x9e37_79b9);
        Self {
            topology,
            replicas,
            budget: RetryBudget::new(config.retry_ratio, config.retry_cap, config.retry_reserve),
            config,
            cursor,
            jitter: AtomicU64::new(seed),
        }
    }

    /// The tier layout this dispatcher serves.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The failure-handling tunables.
    pub fn config(&self) -> &DispatchConfig {
        &self.config
    }

    /// Iterates every replica (for health probing and `/healthz`).
    pub fn all_replicas(&self) -> impl Iterator<Item = &Arc<Replica>> {
        self.replicas.iter().flatten()
    }

    /// xorshift step → a jitter factor in `[0.5, 1.5)`.
    fn jitter_factor(&self) -> f64 {
        let mut x = self.jitter.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.store(x, Ordering::Relaxed);
        0.5 + (x % 1000) as f64 / 1000.0
    }

    /// Picks the next admissible replica of `shard`, scanning from the
    /// round-robin cursor and skipping replicas already tried for this
    /// request (`tried` resets when every replica has been — later
    /// retries may revisit). `None` when every breaker refuses.
    fn pick(&self, shard: usize, tried: &mut [bool], start: usize) -> Option<Arc<Replica>> {
        let replicas = &self.replicas[shard];
        if tried.iter().all(|&t| t) {
            tried.fill(false);
        }
        for k in 0..replicas.len() {
            let i = (start + k) % replicas.len();
            if tried[i] {
                continue;
            }
            match replicas[i].breaker.admit() {
                Admit::Yes | Admit::Probe => {
                    tried[i] = true;
                    return Some(Arc::clone(&replicas[i]));
                }
                Admit::No => continue,
            }
        }
        None
    }

    /// Launches one attempt on its own thread; the thread reports the
    /// breaker verdict itself so a dispatch that has already returned
    /// (lost hedge, blown deadline) still yields passive health signal.
    fn launch(
        &self,
        replica: Arc<Replica>,
        path: &str,
        body: &str,
        request_id: &str,
        deadline: Instant,
        tx: Sender<AttemptReport>,
    ) {
        let timeout = self
            .config
            .attempt_timeout
            .min(deadline.saturating_duration_since(Instant::now()))
            .max(Duration::from_millis(1));
        let path = path.to_string();
        let body = body.to_string();
        let request_id = request_id.to_string();
        fd_obs::counter(&format!("router.attempts.{}", replica.tag())).inc();
        std::thread::spawn(move || {
            let started = Instant::now();
            let result =
                replica.client.post(&path, &body, &[("x-request-id", &request_id)], timeout);
            fd_obs::histogram(
                "router.attempt_us",
                &fd_obs::exponential_buckets(100.0, 4.0, 12),
            )
            .record(started.elapsed().as_secs_f64() * 1e6);
            match &result {
                Ok((status, ..)) if !breaker_failure_status(*status) => {
                    replica.breaker.record_success();
                }
                Ok(_) => {
                    replica.breaker.record_failure();
                    fd_obs::counter(&format!("router.attempt_failures.{}", replica.tag())).inc();
                }
                Err(_) => {
                    replica.breaker.record_failure();
                    fd_obs::counter(&format!("router.attempt_failures.{}", replica.tag())).inc();
                }
            }
            // The dispatcher may be gone (deadline, won hedge); that is
            // fine — the breaker got its report either way.
            let _ = tx.send(AttemptReport { result });
        });
    }

    /// Routes one request body to `shard` with failover, hedging, and
    /// backoff, bounded by `deadline`.
    pub fn dispatch(
        &self,
        shard: usize,
        path: &str,
        body: &str,
        request_id: &str,
        deadline: Instant,
    ) -> Outcome {
        self.budget.on_request();
        let replica_count = self.replicas[shard].len();
        let mut tried = vec![false; replica_count];
        let start = self.cursor[shard].fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel();

        let Some(first) = self.pick(shard, &mut tried, start) else {
            fd_obs::counter("router.no_replica_available").inc();
            return Outcome::Unavailable {
                detail: format!("shard {shard}: all replica breakers are open"),
            };
        };
        self.launch(first, path, body, request_id, deadline, tx.clone());
        let mut inflight = 1usize;
        let mut launched = 1usize;
        let mut hedged = false;
        let mut backoff = self.config.backoff_base;
        let mut last_reply: Option<FullResponse> = None;
        let mut last_error = String::new();

        loop {
            let now = Instant::now();
            if now >= deadline {
                return self.exhausted(last_reply, last_error, true);
            }
            let remaining = deadline - now;
            // Until the hedge fires, wake early at the hedge delay.
            let wait = if !hedged && launched < self.config.max_attempts {
                remaining.min(self.config.hedge_delay)
            } else {
                remaining
            };
            match rx.recv_timeout(wait) {
                Ok(AttemptReport { result: Ok((status, body, headers)) })
                    if !retryable_status(status) =>
                {
                    return Outcome::Replied { status, body, retry_after: find_retry_after(&headers) };
                }
                Ok(AttemptReport { result }) => {
                    inflight -= 1;
                    match result {
                        Ok(reply) => last_reply = Some(reply),
                        Err(e) => last_error = e.to_string(),
                    }
                    if inflight > 0 {
                        continue; // a hedge is still racing
                    }
                    if launched >= self.config.max_attempts || !self.budget.try_withdraw() {
                        return self.exhausted(last_reply, last_error, false);
                    }
                    // Backoff with jitter, but never sleep out the deadline.
                    let pause = backoff.mul_f64(self.jitter_factor());
                    let now = Instant::now();
                    if now + pause >= deadline {
                        return self.exhausted(last_reply, last_error, true);
                    }
                    std::thread::sleep(pause);
                    backoff = backoff.saturating_mul(2);
                    let Some(next) = self.pick(shard, &mut tried, start + launched) else {
                        return self.exhausted(last_reply, last_error, false);
                    };
                    fd_obs::counter("router.retries").inc();
                    self.launch(next, path, body, request_id, deadline, tx.clone());
                    inflight += 1;
                    launched += 1;
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        return self.exhausted(last_reply, last_error, true);
                    }
                    // Hedge: the attempt is slow, not (yet) failed — race
                    // a sibling if the budget allows. One hedge per
                    // request keeps worst-case amplification at 2×.
                    if !hedged
                        && launched < self.config.max_attempts
                        && replica_count > 1
                        && self.budget.try_withdraw()
                    {
                        if let Some(next) = self.pick(shard, &mut tried, start + launched) {
                            fd_obs::counter("router.hedges").inc();
                            self.launch(next, path, body, request_id, deadline, tx.clone());
                            inflight += 1;
                            launched += 1;
                        }
                    }
                    hedged = true;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable: we hold `tx`. Treat as exhaustion.
                    return self.exhausted(last_reply, last_error, false);
                }
            }
        }
    }

    /// Maps an exhausted dispatch to its outcome: relay the last
    /// retryable upstream reply when there is one (a 429's Retry-After
    /// survives), else transport-level unavailability or deadline.
    fn exhausted(
        &self,
        last_reply: Option<FullResponse>,
        last_error: String,
        deadline_hit: bool,
    ) -> Outcome {
        if let Some((status, body, headers)) = last_reply {
            return Outcome::Replied { status, body, retry_after: find_retry_after(&headers) };
        }
        if deadline_hit {
            Outcome::DeadlineExceeded
        } else {
            let detail = if last_error.is_empty() {
                "no replica accepted the request".to_string()
            } else {
                last_error
            };
            Outcome::Unavailable { detail }
        }
    }
}

fn find_retry_after(headers: &[(String, String)]) -> Option<String> {
    headers.iter().find(|(name, _)| name == "retry-after").map(|(_, value)| value.clone())
}

/// The active health prober: polls every replica's `/healthz` at
/// `interval` until `stop` flips, feeding the per-replica breakers —
/// the success path through a half-open breaker is what re-admits a
/// restarted replica without a client request having to gamble on it.
/// Also exports `router.replica_up.*` and `router.breaker_state.*`.
pub fn probe_loop(
    dispatcher: &Dispatcher,
    interval: Duration,
    stop: &std::sync::atomic::AtomicBool,
) {
    let timeout = interval.max(Duration::from_millis(50)).min(Duration::from_millis(500));
    while !stop.load(Ordering::SeqCst) {
        for replica in dispatcher.all_replicas() {
            let tag = replica.tag();
            match replica.breaker.admit() {
                Admit::Yes | Admit::Probe => {
                    let up = replica
                        .client
                        .get("/healthz", timeout)
                        .map(|(status, ..)| status == 200)
                        .unwrap_or(false);
                    if up {
                        replica.breaker.record_success();
                    } else {
                        replica.breaker.record_failure();
                        fd_obs::counter(&format!("router.probe_failures.{tag}")).inc();
                    }
                    fd_obs::gauge(&format!("router.replica_up.{tag}"))
                        .set(if up { 1.0 } else { 0.0 });
                }
                // Open: the replica is known-bad until the window
                // lapses; do not burn a connection finding that out.
                Admit::No => {
                    fd_obs::gauge(&format!("router.replica_up.{tag}")).set(0.0);
                }
            }
            fd_obs::gauge(&format!("router.breaker_state.{tag}"))
                .set(replica.breaker.state_code() as f64);
        }
        fd_obs::gauge("router.retry_budget").set(dispatcher.budget.balance());
        std::thread::sleep(interval);
    }
}

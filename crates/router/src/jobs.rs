//! The async bulk-scoring job queue, spooled crash-safe to disk.
//!
//! Lifecycle: `POST /v1/jobs` validates the request array and durably
//! spools it as `<dir>/job-<n>.json` in state `pending` *before*
//! acknowledging — the temp-file → fsync → rename → dir-fsync
//! discipline `fd-ckpt` uses, so an acknowledged job survives a router
//! crash at any point. A single runner thread drains pending jobs,
//! scoring them in chunks fanned across the shards through the same
//! failover dispatcher interactive traffic uses; the finished record
//! (results included) replaces the spool file atomically in state
//! `done`. `running` exists only in memory: a job the router died
//! mid-way through still reads `pending` on disk and is simply re-run
//! from the top on restart — scoring is pure, so re-running is
//! idempotent and the spool needs no partial-progress bookkeeping.
//!
//! Results are spliced as raw JSON slices (see [`crate::wire`]), so a
//! bulk job's scores are byte-identical to interactive ones.

use crate::dispatch::{Dispatcher, Outcome};
use crate::wire;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A job's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Spooled, not yet picked up (also: recovered after a restart).
    Pending,
    /// The runner is scoring it (in-memory state only).
    Running,
    /// Finished; results are in the spool file.
    Done,
    /// A chunk failed terminally; the spool file holds the error.
    Failed,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// What `GET /v1/jobs/<id>` reports.
#[derive(Debug, Clone, Serialize)]
pub struct JobStatus {
    /// The job id (`job-<n>`).
    pub id: String,
    /// `pending` | `running` | `done` | `failed`.
    pub state: String,
    /// Requests in the job.
    pub total: usize,
    /// Requests scored so far (updates per finished chunk).
    pub completed: usize,
}

struct JobEntry {
    state: JobState,
    total: usize,
    completed: usize,
}

/// The spool directory + in-memory index and work queue.
pub struct JobStore {
    dir: PathBuf,
    jobs: Mutex<HashMap<String, JobEntry>>,
    queue: Mutex<VecDeque<String>>,
    seq: AtomicU64,
}

/// Writes `bytes` to `path` durably: temp file in the same directory,
/// fsync, atomic rename over the target, then directory fsync so the
/// rename itself survives power loss. A crash leaves either the old
/// file or the new one, never a torn mix.
fn durable_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Directory fsync can fail on exotic filesystems; the rename
        // already happened, so treat that as best-effort like fd-ckpt.
        if let Ok(dir) = File::open(dir) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

impl JobStore {
    /// Opens (creating if needed) the spool at `dir` and recovers
    /// existing jobs: `done`/`failed` records become queryable again,
    /// anything else re-enqueues for a full re-run.
    pub fn open(dir: &Path) -> Result<Self, String> {
        fs::create_dir_all(dir).map_err(|e| format!("create spool dir {}: {e}", dir.display()))?;
        let store = Self {
            dir: dir.to_path_buf(),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            seq: AtomicU64::new(1),
        };
        let mut recovered = 0usize;
        let entries =
            fs::read_dir(dir).map_err(|e| format!("read spool dir {}: {e}", dir.display()))?;
        let mut ids: Vec<String> = entries
            .filter_map(|entry| {
                let name = entry.ok()?.file_name().into_string().ok()?;
                let id = name.strip_suffix(".json")?;
                id.starts_with("job-").then(|| id.to_string())
            })
            .collect();
        // Numeric order so recovery re-runs jobs in submission order.
        ids.sort_by_key(|id| id[4..].parse::<u64>().unwrap_or(u64::MAX));
        for id in ids {
            if let Ok(n) = id[4..].parse::<u64>() {
                let next = store.seq.load(Ordering::Relaxed).max(n + 1);
                store.seq.store(next, Ordering::Relaxed);
            }
            let Ok(text) = fs::read_to_string(store.spool_path(&id)) else { continue };
            let state = match wire::raw_string_value(&text, "state") {
                Some("done") => JobState::Done,
                Some("failed") => JobState::Failed,
                _ => JobState::Pending,
            };
            let total = wire::usize_value(&text, "total").unwrap_or(0);
            let completed = if state == JobState::Done { total } else { 0 };
            store
                .jobs
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .insert(id.clone(), JobEntry { state, total, completed });
            if state == JobState::Pending {
                store.queue.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).push_back(id);
                recovered += 1;
            }
        }
        if recovered > 0 {
            fd_obs::counter("router.jobs_recovered").add(recovered as u64);
            fd_obs::event(
                fd_obs::Level::Info,
                "router.jobs_recovered",
                &[("jobs", recovered.into())],
            );
        }
        Ok(store)
    }

    fn spool_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.json"))
    }

    /// Spools a new job. `requests_raw` must be the raw `[...]` slice
    /// of the client's `requests` array; it is persisted verbatim. The
    /// 202 acknowledgement must only be sent after this returns — the
    /// durable write *is* the acknowledgement's meaning.
    pub fn submit(&self, requests_raw: &str) -> Result<JobStatus, String> {
        let elements = wire::array_elements(requests_raw)
            .ok_or_else(|| "requests must be a JSON array".to_string())?;
        if elements.is_empty() {
            return Err("requests array is empty".to_string());
        }
        let total = elements.len();
        let id = format!("job-{}", self.seq.fetch_add(1, Ordering::Relaxed));
        let record = format!(
            "{{\"id\":\"{id}\",\"state\":\"pending\",\"total\":{total},\"requests\":{requests_raw}}}"
        );
        durable_write(&self.spool_path(&id), record.as_bytes())
            .map_err(|e| format!("spool job: {e}"))?;
        self.jobs
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(id.clone(), JobEntry { state: JobState::Pending, total, completed: 0 });
        self.queue.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).push_back(id.clone());
        fd_obs::counter("router.jobs_submitted").inc();
        Ok(JobStatus { id, state: "pending".into(), total, completed: 0 })
    }

    /// One job's status, if known.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let jobs = self.jobs.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        jobs.get(id).map(|entry| JobStatus {
            id: id.to_string(),
            state: entry.state.name().into(),
            total: entry.total,
            completed: entry.completed,
        })
    }

    /// Every job, newest first.
    pub fn list(&self) -> Vec<JobStatus> {
        let jobs = self.jobs.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut statuses: Vec<JobStatus> = jobs
            .iter()
            .map(|(id, entry)| JobStatus {
                id: id.clone(),
                state: entry.state.name().into(),
                total: entry.total,
                completed: entry.completed,
            })
            .collect();
        statuses.sort_by_key(|s| std::cmp::Reverse(s.id[4..].parse::<u64>().unwrap_or(0)));
        statuses
    }

    /// The finished record (results included) for a `done` or `failed`
    /// job; `Err` carries `(status, message)` for the HTTP layer.
    pub fn results(&self, id: &str) -> Result<String, (u16, String)> {
        let state = {
            let jobs = self.jobs.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            jobs.get(id).map(|entry| entry.state)
        };
        match state {
            None => Err((404, format!("no such job: {id}"))),
            Some(JobState::Pending | JobState::Running) => {
                Err((409, format!("job {id} is not complete yet")))
            }
            Some(JobState::Done | JobState::Failed) => fs::read_to_string(self.spool_path(id))
                .map_err(|e| (500, format!("read job spool: {e}"))),
        }
    }

    fn set_state(&self, id: &str, state: JobState) {
        let mut jobs = self.jobs.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(entry) = jobs.get_mut(id) {
            entry.state = state;
            if state == JobState::Done {
                entry.completed = entry.total;
            }
        }
    }

    fn add_completed(&self, id: &str, n: usize) {
        let mut jobs = self.jobs.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(entry) = jobs.get_mut(id) {
            entry.completed += n;
        }
    }

    /// Scores one spooled job through `dispatcher`, writing the
    /// finished record back durably.
    fn process(
        &self,
        id: &str,
        dispatcher: &Dispatcher,
        chunk_size: usize,
        chunk_deadline: Duration,
    ) -> Result<(), String> {
        let text = fs::read_to_string(self.spool_path(id))
            .map_err(|e| format!("read spooled job: {e}"))?;
        let requests = wire::raw_value(&text, "requests")
            .ok_or_else(|| "spooled job has no requests".to_string())?;
        let elements = wire::array_elements(requests)
            .ok_or_else(|| "spooled requests are not an array".to_string())?;
        let shards = dispatcher.topology().shard_count();
        let mut mode_and_labels: Option<(String, String)> = None;
        let mut result_slices: Vec<String> = Vec::with_capacity(elements.len());
        for (chunk_index, chunk) in elements.chunks(chunk_size.max(1)).enumerate() {
            let body = format!("{{\"requests\":[{}]}}", chunk.join(","));
            // Bulk chunks are inductive (by-id is rejected in batches),
            // so any shard can score them; round-robin spreads the job
            // across the tier.
            let shard = chunk_index % shards;
            let deadline = Instant::now() + chunk_deadline;
            let request_id = format!("{id}-c{chunk_index}");
            match dispatcher.dispatch(shard, "/v1/predict_batch", &body, &request_id, deadline) {
                Outcome::Replied { status: 200, body, .. } => {
                    let results = wire::raw_value(&body, "results")
                        .and_then(wire::array_elements)
                        .ok_or_else(|| "upstream batch response lacks results".to_string())?;
                    if results.len() != chunk.len() {
                        return Err(format!(
                            "chunk {chunk_index}: {} results for {} requests",
                            results.len(),
                            chunk.len()
                        ));
                    }
                    if mode_and_labels.is_none() {
                        let mode = wire::raw_value(&body, "mode").unwrap_or("\"unknown\"");
                        let labels = wire::raw_value(&body, "labels").unwrap_or("[]");
                        mode_and_labels = Some((mode.to_string(), labels.to_string()));
                    }
                    result_slices.extend(results.iter().map(|s| s.to_string()));
                    self.add_completed(id, chunk.len());
                }
                Outcome::Replied { status, body, .. } => {
                    return Err(format!("chunk {chunk_index}: upstream {status}: {body}"));
                }
                Outcome::DeadlineExceeded => {
                    return Err(format!("chunk {chunk_index}: deadline exceeded"));
                }
                Outcome::Unavailable { detail } => {
                    return Err(format!("chunk {chunk_index}: {detail}"));
                }
            }
        }
        let (mode, labels) =
            mode_and_labels.unwrap_or_else(|| ("\"unknown\"".to_string(), "[]".to_string()));
        let record = format!(
            "{{\"id\":\"{id}\",\"state\":\"done\",\"total\":{},\"completed\":{},\"mode\":{mode},\"labels\":{labels},\"results\":[{}]}}",
            elements.len(),
            elements.len(),
            result_slices.join(",")
        );
        durable_write(&self.spool_path(id), record.as_bytes())
            .map_err(|e| format!("write finished job: {e}"))
    }

    /// The runner loop: drains pending jobs until `stop` flips. Run it
    /// on one dedicated thread — single-flight keeps bulk work from
    /// starving interactive traffic, which shares the same shard tier.
    pub fn run_worker(
        &self,
        dispatcher: &Dispatcher,
        stop: &AtomicBool,
        chunk_size: usize,
        chunk_deadline: Duration,
    ) {
        while !stop.load(Ordering::SeqCst) {
            let next =
                self.queue.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).pop_front();
            let Some(id) = next else {
                std::thread::sleep(Duration::from_millis(50));
                continue;
            };
            self.set_state(&id, JobState::Running);
            fd_obs::event(
                fd_obs::Level::Info,
                "router.job_start",
                &[("id", fd_obs::Value::Str(id.clone()))],
            );
            match self.process(&id, dispatcher, chunk_size, chunk_deadline) {
                Ok(()) => {
                    self.set_state(&id, JobState::Done);
                    fd_obs::counter("router.jobs_completed").inc();
                }
                Err(e) => {
                    let record = format!(
                        "{{\"id\":\"{id}\",\"state\":\"failed\",\"total\":{},\"error\":{}}}",
                        self.status(&id).map(|s| s.total).unwrap_or(0),
                        serde_json::to_string(&e).unwrap_or_else(|_| "\"error\"".into())
                    );
                    let _ = durable_write(&self.spool_path(&id), record.as_bytes());
                    self.set_state(&id, JobState::Failed);
                    fd_obs::counter("router.jobs_failed").inc();
                    fd_obs::event(
                        fd_obs::Level::Error,
                        "router.job_failed",
                        &[
                            ("id", fd_obs::Value::Str(id.clone())),
                            ("error", fd_obs::Value::Str(e)),
                        ],
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("fd-router-jobs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn submit_spools_durably_and_tracks_status() {
        let dir = tmp_dir("submit");
        let store = JobStore::open(&dir).unwrap();
        let status = store.submit(r#"[{"text":"a"},{"text":"b"}]"#).unwrap();
        assert_eq!(status.state, "pending");
        assert_eq!(status.total, 2);
        let on_disk = fs::read_to_string(dir.join(format!("{}.json", status.id))).unwrap();
        assert_eq!(wire::raw_string_value(&on_disk, "state"), Some("pending"));
        assert_eq!(
            wire::raw_value(&on_disk, "requests"),
            Some(r#"[{"text":"a"},{"text":"b"}]"#),
            "requests persist verbatim"
        );
        assert!(store.results(&status.id).is_err(), "no results before completion");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_empty_or_malformed_submissions() {
        let dir = tmp_dir("reject");
        let store = JobStore::open(&dir).unwrap();
        assert!(store.submit("[]").is_err());
        assert!(store.submit("not an array").is_err());
        assert!(store.submit(r#"[{"text":"a"#).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_recovers_pending_jobs_and_seq() {
        let dir = tmp_dir("recover");
        let first_id = {
            let store = JobStore::open(&dir).unwrap();
            store.submit(r#"[{"text":"x"}]"#).unwrap().id
        };
        // A "router restart": a fresh store over the same spool dir.
        let store = JobStore::open(&dir).unwrap();
        let recovered = store.status(&first_id).expect("job survives restart");
        assert_eq!(recovered.state, "pending");
        let second = store.submit(r#"[{"text":"y"}]"#).unwrap();
        assert_ne!(second.id, first_id, "sequence resumes past recovered ids");
        assert_eq!(store.list().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn done_jobs_recover_as_done() {
        let dir = tmp_dir("done");
        let id = {
            let store = JobStore::open(&dir).unwrap();
            let id = store.submit(r#"[{"text":"x"}]"#).unwrap().id;
            // Simulate the runner finishing: write a done record.
            let record = format!(
                "{{\"id\":\"{id}\",\"state\":\"done\",\"total\":1,\"completed\":1,\"mode\":\"m\",\"labels\":[],\"results\":[[0.5,0.5]]}}"
            );
            durable_write(&store.spool_path(&id), record.as_bytes()).unwrap();
            id
        };
        let store = JobStore::open(&dir).unwrap();
        let status = store.status(&id).unwrap();
        assert_eq!(status.state, "done");
        assert_eq!(status.completed, 1);
        let body = store.results(&id).unwrap();
        assert_eq!(wire::raw_value(&body, "results"), Some("[[0.5,0.5]]"));
        let _ = fs::remove_dir_all(&dir);
    }
}

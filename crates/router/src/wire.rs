//! Raw-JSON slicing for bitwise-faithful relaying.
//!
//! The router's merge path must never parse-and-reprint floats: a
//! `0.30000001` that round-trips through an `f32` could come back as a
//! different decimal string, breaking the tier's guarantee that routed
//! scores are *bitwise-identical* to a single-process server's. So the
//! router treats upstream bodies as text and splices raw value slices
//! — these helpers find a key's raw value in an object and split an
//! array into its top-level element slices, respecting strings,
//! escapes, and nesting. They are read-only scanners; building merged
//! bodies is plain string concatenation of the slices.

/// Byte-index past the end of the string whose opening `"` is at `i`.
fn scan_string(b: &[u8], i: usize) -> Option<usize> {
    debug_assert_eq!(b.get(i), Some(&b'"'));
    let mut i = i + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return Some(i + 1),
            _ => i += 1,
        }
    }
    None
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

/// Byte-index past the end of the JSON value starting at `i` (object,
/// array, string, number, `true`/`false`/`null`).
fn scan_value(b: &[u8], i: usize) -> Option<usize> {
    match b.get(i)? {
        b'"' => scan_string(b, i),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut j = i;
            while j < b.len() {
                match b[j] {
                    b'"' => j = scan_string(b, j)?,
                    b'{' | b'[' => {
                        depth += 1;
                        j += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        j += 1;
                        if depth == 0 {
                            return Some(j);
                        }
                    }
                    _ => j += 1,
                }
            }
            None
        }
        _ => {
            // Number / true / false / null: runs until a delimiter.
            let mut j = i;
            while j < b.len() && !matches!(b[j], b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r')
            {
                j += 1;
            }
            (j > i).then_some(j)
        }
    }
}

/// The raw value slice of top-level `key` in a JSON object — exactly
/// the bytes between (but not re-encoding) the source text. `None` when
/// `json` is not an object or lacks the key.
pub fn raw_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let b = json.as_bytes();
    let mut i = skip_ws(b, 0);
    if b.get(i) != Some(&b'{') {
        return None;
    }
    i += 1;
    loop {
        i = skip_ws(b, i);
        match b.get(i)? {
            b'}' => return None,
            b',' => i += 1,
            b'"' => {
                let key_end = scan_string(b, i)?;
                let found = &json[i + 1..key_end - 1];
                i = skip_ws(b, key_end);
                if b.get(i) != Some(&b':') {
                    return None;
                }
                i = skip_ws(b, i + 1);
                let value_end = scan_value(b, i)?;
                if found == key {
                    return Some(&json[i..value_end]);
                }
                i = value_end;
            }
            _ => return None,
        }
    }
}

/// Splits a raw `[...]` slice into its top-level element slices.
/// `None` when the input is not a well-formed array.
pub fn array_elements(array: &str) -> Option<Vec<&str>> {
    let b = array.as_bytes();
    let mut i = skip_ws(b, 0);
    if b.get(i) != Some(&b'[') {
        return None;
    }
    i = skip_ws(b, i + 1);
    let mut elements = Vec::new();
    if b.get(i) == Some(&b']') {
        return Some(elements);
    }
    loop {
        let end = scan_value(b, i)?;
        elements.push(&array[i..end]);
        i = skip_ws(b, end);
        match b.get(i)? {
            b',' => i = skip_ws(b, i + 1),
            b']' => return Some(elements),
            _ => return None,
        }
    }
}

/// Top-level `key` as a usize, when present and numeric.
pub fn usize_value(json: &str, key: &str) -> Option<usize> {
    raw_value(json, key)?.trim().parse().ok()
}

/// Top-level `key` as a string. Returns the *raw inner* slice of the
/// string literal (escapes intact) — the router only hashes it for
/// routing, where stability matters and decoding does not.
pub fn raw_string_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let raw = raw_value(json, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"mode":"gdu","labels":["true","false"],"results":[[0.30000001,0.69999999],[1e-7,0.5]],"n":42}"#;

    #[test]
    fn raw_value_returns_exact_slices() {
        assert_eq!(raw_value(SAMPLE, "mode"), Some(r#""gdu""#));
        assert_eq!(raw_value(SAMPLE, "labels"), Some(r#"["true","false"]"#));
        assert_eq!(
            raw_value(SAMPLE, "results"),
            Some("[[0.30000001,0.69999999],[1e-7,0.5]]"),
            "float text must come back byte-for-byte"
        );
        assert_eq!(raw_value(SAMPLE, "n"), Some("42"));
        assert_eq!(raw_value(SAMPLE, "missing"), None);
    }

    #[test]
    fn array_elements_split_at_top_level_only() {
        let results = raw_value(SAMPLE, "results").unwrap();
        let elements = array_elements(results).unwrap();
        assert_eq!(elements, vec!["[0.30000001,0.69999999]", "[1e-7,0.5]"]);
        assert_eq!(array_elements("[]").unwrap(), Vec::<&str>::new());
        assert_eq!(array_elements(" [ 1 , 2 ] ").unwrap(), vec!["1", "2"]);
    }

    #[test]
    fn strings_with_escapes_and_brackets_do_not_confuse_the_scanner() {
        let json = r#"{"text":"a \"quoted\" ] } value","id":7}"#;
        assert_eq!(raw_string_value(json, "text"), Some(r#"a \"quoted\" ] } value"#));
        assert_eq!(usize_value(json, "id"), Some(7));
    }

    #[test]
    fn nested_objects_are_one_element() {
        let elements = array_elements(r#"[{"a":[1,2]},{"b":{"c":3}}]"#).unwrap();
        assert_eq!(elements, vec![r#"{"a":[1,2]}"#, r#"{"b":{"c":3}}"#]);
    }

    #[test]
    fn malformed_input_is_none_not_panic() {
        assert_eq!(raw_value("not json", "k"), None);
        assert_eq!(raw_value(r#"{"unterminated":"..."#, "unterminated"), None);
        assert_eq!(array_elements("[1,2"), None);
        assert_eq!(array_elements("{}"), None);
    }
}

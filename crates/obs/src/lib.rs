//! `fd-obs` — structured tracing, metrics and profiling hooks for the
//! FakeDetector stack.
//!
//! Three layers, all dependency-free (std only) because `fd-tensor`'s
//! hot kernels sit on top of this crate:
//!
//! 1. **Leveled structured logging** ([`event`], [`Level`], [`Value`]):
//!    JSONL events — one JSON object per line with a monotonic
//!    timestamp, the current span path, an event name and `key=value`
//!    fields — written to stderr, or to a file when `FD_LOG_FILE` is
//!    set. The level comes from `FD_LOG` (`off`/`error`/`info`/`debug`,
//!    default `off`); below-level events cost one branch.
//! 2. **RAII span timers** ([`span`], [`span_timed`]): nested spans
//!    build dotted parent paths (`fit.epoch`), emit a `span` event with
//!    the elapsed time at `debug` level, and can feed a [`Histogram`]
//!    regardless of the log level.
//! 3. **A global metrics registry** ([`counter`], [`gauge`],
//!    [`histogram`], [`snapshot`]): lock-free relaxed-atomic counters,
//!    f64 gauges and fixed-bucket histograms, serialised to JSON by
//!    `snapshot()`. Registration takes a mutex; recording is atomic
//!    ops only, cheap enough for per-kernel-call hooks.
//!
//! Registry handles are `&'static` and creation is idempotent (first
//! registration's bucket bounds win), so call sites just name what they
//! record:
//!
//! ```
//! let scored = fd_obs::counter("doc.items_scored");
//! scored.add(3);
//! assert!(fd_obs::counter("doc.items_scored").get() >= 3);
//!
//! fd_obs::gauge("doc.queue_depth").set(7.0);
//!
//! let latency = fd_obs::histogram("doc.latency_us", &fd_obs::exponential_buckets(50.0, 4.0, 8));
//! {
//!     let _timer = fd_obs::span_timed("doc.work", latency); // records on drop
//! }
//! assert!(latency.count() >= 1);
//!
//! // Everything registered so far, as deterministic JSON.
//! assert!(fd_obs::snapshot().contains("doc.latency_us"));
//! ```
//!
//! Two more layers sit alongside, added for the serving SLO work:
//!
//! * **Request tracing** ([`trace`], [`TraceCtx`]): `Copy` trace
//!   contexts that propagate across thread boundaries (a serve
//!   request's context rides its queued job through the batcher), a
//!   lock-free drop-oldest ring collector gated by `FD_TRACE` /
//!   `FD_TRACE_SAMPLE`, and Chrome `trace_event` JSON export
//!   (`FD_TRACE_FILE`, [`trace::flush`]) loadable in Perfetto.
//! * **Prometheus exposition** ([`prometheus_text`],
//!   [`validate_prometheus`]): the whole registry rendered as a 0.0.4
//!   text scrape (`_total` counters, cumulative `_bucket`/`_sum`/
//!   `_count` histograms) for `GET /metrics`.
//!
//! The JSON string escaper the logger uses is exported
//! ([`escape_json`], [`push_json_string`]) so other crates that
//! hand-roll JSON (e.g. `fd-metrics` result series) share one correct
//! implementation.
//!
//! ## Event schema
//!
//! ```json
//! {"ts_us":1234,"level":"info","span":"fit","event":"train.epoch","fields":{"epoch":3,"loss":812.5}}
//! ```
//!
//! `ts_us` is microseconds since the first observation in the process
//! (monotonic clock, never wall time), `span` is the dotted path of the
//! enclosing spans on the emitting thread (empty at top level), and
//! `fields` holds the event's key/value payload.

mod json;
mod log;
mod metrics;
mod prom;
mod span;
pub mod trace;

pub use json::{escape_json, push_json_f64, push_json_string};
pub use log::{enabled, event, level, with_capture, with_level, Level, Value};
pub use metrics::{
    counter, exponential_buckets, gauge, histogram, snapshot, Counter, Gauge, Histogram,
};
pub use prom::{prometheus_text, validate_prometheus, PROMETHEUS_CONTENT_TYPE};
pub use span::{current_span_path, span, span_timed, SpanTimer};
pub use trace::TraceCtx;

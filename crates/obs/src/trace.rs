//! Request tracing: trace-context propagation and a lock-free span
//! collector exporting Chrome `trace_event` JSON.
//!
//! A [`TraceCtx`] names one causal chain — an HTTP request, a training
//! run — with a `trace_id`, plus the current span (`span_id`) and its
//! parent (`parent_id`). Contexts are tiny `Copy` values made to be
//! carried across thread boundaries (a serve request's context rides
//! its queued job through the batcher), so a request's queue wait,
//! batch assembly and scoring time link into one trace even though
//! three threads produced them.
//!
//! Completed spans land in a fixed-capacity ring buffer: producers
//! claim a slot with one `fetch_add` and publish it seqlock-style
//! (odd sequence while writing, a ticket-unique even value when
//! stable), so recording never blocks and the newest spans overwrite
//! the oldest under overload. Readers ([`export_chrome_json`],
//! [`take_spans`]) discard any slot whose sequence moved while they
//! were reading it — a torn span can never be observed.
//!
//! Gating mirrors `FD_LOG`:
//!
//! * `FD_TRACE` — `on`/`1`/`true` enables collection (default off; the
//!   off path is one relaxed atomic load per call site).
//! * `FD_TRACE_FILE` — where [`flush`] writes the Chrome JSON.
//! * `FD_TRACE_SAMPLE` — keep 1 in N traces (default 1 = every trace).
//!   Sampling is decided once per root context from its `trace_id`, so
//!   a trace is either recorded whole or not at all.
//!
//! The export is a Chrome `trace_event` document (`{"traceEvents":
//! [...]}` of `"ph":"X"` complete events) loadable in `chrome://tracing`
//! or <https://ui.perfetto.dev>. Each trace is exported on its own
//! `tid` row so its spans nest by time containment, and every event
//! carries `args.trace`/`args.span`/`args.parent` for programmatic
//! reassembly (`fdctl trace summarize`).

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Spans the collector can hold before drop-oldest kicks in. ~72 bytes
/// per slot, so the buffer is ~1.2 MiB — enough for several seconds of
/// serve traffic at full sampling.
pub const RING_CAPACITY: usize = 16 * 1024;

/// Distinct span names the interner can hold; later names collapse to
/// an `"?overflow"` bucket instead of failing.
const MAX_NAMES: usize = 512;

// ---------------------------------------------------------------------------
// Configuration (FD_TRACE / FD_TRACE_SAMPLE), overridable for tests.

static ENABLED: AtomicU64 = AtomicU64::new(0); // 0 = unresolved, 1 = off, 2 = on
static SAMPLE: AtomicU64 = AtomicU64::new(0); // 0 = unresolved, else N

/// Whether span collection is on (`FD_TRACE=on|1|true`, or
/// [`set_enabled`]). One relaxed load on the fast path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("FD_TRACE")
                .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "on" | "1" | "true"))
                .unwrap_or(false);
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        2 => true,
        _ => false,
    }
}

/// Overrides the `FD_TRACE` gate at runtime — used by tests and the
/// overhead benchmark; production code lets the env decide.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The sampling modulus: keep traces whose `trace_id % N == 0`.
fn sample_n() -> u64 {
    match SAMPLE.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("FD_TRACE_SAMPLE")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1);
            SAMPLE.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides `FD_TRACE_SAMPLE` at runtime (`n >= 1`; 1 = keep all).
pub fn set_sample(n: u64) {
    SAMPLE.store(n.max(1), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// The shared monotonic clock.

static START: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the first trace observation in this process —
/// the clock every span timestamp uses. Monotonic, never wall time.
#[inline]
pub fn now_us() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Ids.

static NEXT_ID: AtomicU64 = AtomicU64::new(0);
static ID_SEED: OnceLock<u64> = OnceLock::new();

/// A process-unique, run-randomised 64-bit id: a per-process random
/// seed (std's `RandomState`, no rand dependency) mixed with an atomic
/// counter through a splitmix64 round, so ids from concurrent threads
/// never collide and differ across runs.
fn fresh_id() -> u64 {
    let seed = *ID_SEED.get_or_init(|| {
        let mut h = RandomState::new().build_hasher();
        h.write_u64(0x5eed);
        h.finish() | 1
    });
    let n = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    mix64(seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// splitmix64 finaliser — also used to spread request-id hashes.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the bytes of an inbound request id, so the same
/// `X-Request-Id` always maps to the same trace id.
fn hash_request_id(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in id.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    mix64(h).max(1)
}

// ---------------------------------------------------------------------------
// Trace context.

/// A causal position inside one trace: which trace, which span, and
/// that span's parent. `Copy` so it travels freely across channels and
/// thread boundaries; 33 bytes of state, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The trace every span of one request/run shares.
    pub trace_id: u64,
    /// The current span's id (0 only in [`TraceCtx::off`]).
    pub span_id: u64,
    /// The enclosing span's id; 0 at the root.
    pub parent_id: u64,
    /// Whether this trace is being recorded. Decided once at the root
    /// from `FD_TRACE` + `FD_TRACE_SAMPLE`; children inherit it, so a
    /// trace is recorded whole or not at all.
    pub sampled: bool,
}

impl TraceCtx {
    /// A new root context with a fresh random trace id, sampled per
    /// the `FD_TRACE`/`FD_TRACE_SAMPLE` gates.
    pub fn root() -> TraceCtx {
        let trace_id = fresh_id().max(1);
        Self::root_with_id(trace_id)
    }

    /// A root context derived from an inbound request id (e.g. an
    /// `X-Request-Id` header): the same id always yields the same
    /// trace id, so retries and upstream logs line up.
    pub fn from_request_id(request_id: &str) -> TraceCtx {
        Self::root_with_id(hash_request_id(request_id))
    }

    fn root_with_id(trace_id: u64) -> TraceCtx {
        let sampled = enabled() && trace_id.is_multiple_of(sample_n());
        TraceCtx { trace_id, span_id: fresh_id(), parent_id: 0, sampled }
    }

    /// The inert context: never sampled, records nothing. What trace
    /// plumbing carries when tracing is off.
    pub const fn off() -> TraceCtx {
        TraceCtx { trace_id: 0, span_id: 0, parent_id: 0, sampled: false }
    }

    /// A child position: fresh span id, parented to this span, same
    /// trace and sampling decision.
    pub fn child(&self) -> TraceCtx {
        if !self.sampled {
            return TraceCtx::off();
        }
        TraceCtx {
            trace_id: self.trace_id,
            span_id: fresh_id(),
            parent_id: self.span_id,
            sampled: true,
        }
    }

    /// Records this context's span with an explicit start and
    /// duration — the form used across thread boundaries, where the
    /// start was stamped on one thread and the end observed on
    /// another. No-op unless sampled.
    pub fn record(&self, name: &'static str, start_us: u64, dur_us: u64) {
        if self.sampled {
            ring().push(self, name, start_us, dur_us);
        }
    }

    /// Opens an RAII child span that records itself on drop. When the
    /// trace is not sampled this is a no-op guard (no clock read).
    pub fn span(&self, name: &'static str) -> TraceGuard {
        let child = self.child();
        TraceGuard { ctx: child, name, start_us: child.sampled.then(now_us) }
    }

    /// The trace id as the 16-hex-digit string used in exports and
    /// echoed `X-Request-Id` headers.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

/// Guard returned by [`TraceCtx::span`]; records the span on drop.
#[must_use = "a trace span ends when the guard drops — bind it with `let`"]
pub struct TraceGuard {
    ctx: TraceCtx,
    name: &'static str,
    start_us: Option<u64>,
}

impl TraceGuard {
    /// The guard's own context — parent for further nested spans.
    pub fn ctx(&self) -> &TraceCtx {
        &self.ctx
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(start_us) = self.start_us {
            self.ctx.record(self.name, start_us, now_us().saturating_sub(start_us));
        }
    }
}

// ---------------------------------------------------------------------------
// Name interning: &'static str -> small index, lock-free after the
// first record per name, so slots carry a plain u64 instead of a
// pointer that could tear.

struct NameTable {
    /// Pointer identity of interned names (0 = empty); index here is
    /// the name id stored in slots.
    ptrs: Box<[AtomicUsize]>,
    /// id -> name, appended under the mutex; reads happen on the
    /// export path only.
    names: Mutex<Vec<&'static str>>,
}

static NAME_TABLE: OnceLock<NameTable> = OnceLock::new();

fn name_table() -> &'static NameTable {
    NAME_TABLE.get_or_init(|| NameTable {
        ptrs: (0..MAX_NAMES).map(|_| AtomicUsize::new(0)).collect(),
        names: Mutex::new(Vec::new()),
    })
}

fn lock_names(t: &NameTable) -> std::sync::MutexGuard<'_, Vec<&'static str>> {
    t.names.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The interned id for `name`. Fast path: scan published pointers
/// (each record site hits its own name within the first few entries).
/// Slow path (first use of a name): register under the mutex, dedup
/// by content so the same literal from two codegen units shares an id.
fn intern(name: &'static str) -> u64 {
    let table = name_table();
    let ptr = name.as_ptr() as usize;
    for (i, slot) in table.ptrs.iter().enumerate() {
        match slot.load(Ordering::Acquire) {
            0 => break,
            p if p == ptr => return i as u64,
            _ => {}
        }
    }
    let mut names = lock_names(table);
    if let Some(i) = names.iter().position(|&n| std::ptr::eq(n.as_ptr(), name.as_ptr()) || n == name)
    {
        return i as u64;
    }
    if names.len() >= MAX_NAMES {
        return 0; // overflow bucket: the very first interned name
    }
    names.push(name);
    let i = names.len() - 1;
    table.ptrs[i].store(ptr, Ordering::Release);
    i as u64
}

fn name_of(id: u64) -> &'static str {
    let names = lock_names(name_table());
    names.get(id as usize).copied().unwrap_or("?")
}

// ---------------------------------------------------------------------------
// The ring collector.

/// One completed span as read back out of the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_id: u64,
    /// Span name as passed to `record`.
    pub name: &'static str,
    /// Start, microseconds on the [`now_us`] clock.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

#[derive(Default)]
struct Slot {
    /// 0 = never written; odd = write in progress; even = stable, and
    /// unique per write ticket, so a reader can detect any concurrent
    /// overwrite.
    seq: AtomicU64,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_id: AtomicU64,
    name_id: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
}

struct Ring {
    slots: Box<[Slot]>,
    /// Total spans ever pushed; `head % capacity` is the next slot.
    head: AtomicU64,
}

static RING: OnceLock<Ring> = OnceLock::new();

fn ring() -> &'static Ring {
    RING.get_or_init(|| Ring {
        slots: (0..RING_CAPACITY).map(|_| Slot::default()).collect(),
        head: AtomicU64::new(0),
    })
}

impl Ring {
    /// Lock-free push: claim a ticket, mark the slot as in-write (odd
    /// seq), store the fields, publish with the ticket's unique even
    /// seq. Under wrap-around contention the last writer wins and any
    /// reader that raced sees a seq mismatch and discards the slot.
    fn push(&self, ctx: &TraceCtx, name: &'static str, start_us: u64, dur_us: u64) {
        let name_id = intern(name);
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % RING_CAPACITY as u64) as usize];
        slot.seq.store(ticket * 2 + 1, Ordering::Release);
        slot.trace_id.store(ctx.trace_id, Ordering::Relaxed);
        slot.span_id.store(ctx.span_id, Ordering::Relaxed);
        slot.parent_id.store(ctx.parent_id, Ordering::Relaxed);
        slot.name_id.store(name_id, Ordering::Relaxed);
        slot.start_us.store(start_us, Ordering::Relaxed);
        slot.dur_us.store(dur_us, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// Reads every stable slot, discarding any that a concurrent
    /// writer touched mid-read (seqlock validation).
    fn collect(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let span = Span {
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                span_id: slot.span_id.load(Ordering::Relaxed),
                parent_id: slot.parent_id.load(Ordering::Relaxed),
                name: name_of(slot.name_id.load(Ordering::Relaxed)),
                start_us: slot.start_us.load(Ordering::Relaxed),
                dur_us: slot.dur_us.load(Ordering::Relaxed),
            };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Acquire) != before {
                continue; // overwritten while reading — discard, never tear
            }
            out.push(span);
        }
        out.sort_by_key(|s| (s.start_us, s.span_id));
        out
    }

    /// `collect` + clear: marks every slot empty again so tests and
    /// repeated flushes see only new spans.
    fn drain(&self) -> Vec<Span> {
        let spans = self.collect();
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
        spans
    }
}

/// Every stable span currently in the buffer, oldest first. Leaves the
/// buffer intact.
pub fn snapshot_spans() -> Vec<Span> {
    ring().collect()
}

/// Drains the buffer: returns the stable spans and resets every slot.
pub fn take_spans() -> Vec<Span> {
    ring().drain()
}

/// Spans ever recorded (including those already overwritten); with
/// [`RING_CAPACITY`] this tells how many the buffer dropped.
pub fn recorded_total() -> u64 {
    ring().head.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Chrome trace_event export.

/// Serialises `spans` as a Chrome `trace_event` JSON document. Each
/// span becomes a `"ph":"X"` complete event; the `tid` is derived from
/// the trace id so every trace renders as its own row (spans of one
/// request nest by time containment), and `args` carries the raw
/// trace/span/parent ids for programmatic analysis.
pub fn chrome_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(128 * spans.len() + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":");
        crate::json::push_json_string(&mut out, s.name);
        use std::fmt::Write as _;
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\
             \"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"}}}}",
            s.start_us,
            s.dur_us,
            s.trace_id % 1_000_000,
            s.trace_id,
            s.span_id,
            s.parent_id,
        );
    }
    out.push_str("\n]}\n");
    out
}

/// [`chrome_json`] over the current buffer contents.
pub fn export_chrome_json() -> String {
    chrome_json(&snapshot_spans())
}

/// Writes the buffered spans to `FD_TRACE_FILE` as Chrome trace JSON
/// and clears the buffer. Returns the path written, `None` when
/// tracing is off or no file is configured. Call sites: `fdctl train`,
/// `fdctl obs`, `fdctl serve` shutdown, and the bench binaries.
pub fn flush() -> Result<Option<String>, String> {
    if !enabled() {
        return Ok(None);
    }
    let Ok(path) = std::env::var("FD_TRACE_FILE") else {
        return Ok(None);
    };
    if path.is_empty() {
        return Ok(None);
    }
    let spans = take_spans();
    std::fs::write(&path, chrome_json(&spans)).map_err(|e| format!("{path}: {e}"))?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gates and the ring are process-global; serialise the tests
    /// that mutate them so parallel test threads don't race.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(true);
        set_sample(1);
        guard
    }

    #[test]
    fn off_context_records_nothing() {
        let _l = locked();
        let before = recorded_total();
        let off = TraceCtx::off();
        off.record("trace.test.off", 0, 1);
        let _g = off.span("trace.test.off_guard");
        drop(_g);
        assert_eq!(recorded_total(), before);
    }

    #[test]
    fn child_inherits_trace_and_parents_to_creator() {
        let _l = locked();
        let root = TraceCtx::root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn request_id_mapping_is_deterministic() {
        let _l = locked();
        let a = TraceCtx::from_request_id("req-42");
        let b = TraceCtx::from_request_id("req-42");
        let c = TraceCtx::from_request_id("req-43");
        assert_eq!(a.trace_id, b.trace_id);
        assert_ne!(a.trace_id, c.trace_id);
    }

    #[test]
    fn recorded_spans_come_back_in_exports() {
        let _l = locked();
        let root = TraceCtx::root();
        root.record("trace.test.export", 100, 50);
        let spans = snapshot_spans();
        let mine: Vec<_> = spans.iter().filter(|s| s.trace_id == root.trace_id).collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].name, "trace.test.export");
        assert_eq!((mine[0].start_us, mine[0].dur_us), (100, 50));
        let json = chrome_json(&spans.iter().filter(|s| s.trace_id == root.trace_id).cloned().collect::<Vec<_>>());
        assert!(json.contains("\"name\":\"trace.test.export\""), "{json}");
        assert!(json.contains(&format!("\"trace\":\"{:016x}\"", root.trace_id)), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
    }

    #[test]
    fn sampling_drops_whole_traces() {
        let _l = locked();
        set_sample(u64::MAX); // only trace_id 0 % MAX == 0 is kept — i.e. none
        let root = TraceCtx::root();
        assert!(!root.sampled);
        assert!(!root.child().sampled);
        set_sample(1);
        assert!(TraceCtx::root().sampled);
    }

    #[test]
    fn guard_records_on_drop_with_nesting() {
        let _l = locked();
        let root = TraceCtx::root();
        {
            let outer = root.span("trace.test.outer");
            let _inner = outer.ctx().span("trace.test.inner");
        }
        let spans: Vec<_> =
            snapshot_spans().into_iter().filter(|s| s.trace_id == root.trace_id).collect();
        assert_eq!(spans.len(), 2, "{spans:?}");
        let outer = spans.iter().find(|s| s.name == "trace.test.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "trace.test.inner").unwrap();
        assert_eq!(inner.parent_id, outer.span_id);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us + 1);
    }

    #[test]
    fn interning_dedupes_and_survives_overflow() {
        assert_eq!(intern("trace.test.name_a"), intern("trace.test.name_a"));
        let id = intern("trace.test.name_b");
        assert_eq!(name_of(id), "trace.test.name_b");
    }
}

//! RAII span timers. Spans nest per thread into dotted paths
//! (`fit.epoch`); every event emitted while a span is open carries the
//! path, and the span itself emits a `span` event with its elapsed time
//! at `debug` level when it closes. [`span_timed`] additionally feeds a
//! [`Histogram`] regardless of the log level, which is how hot paths
//! keep timing distributions with logging off.

use crate::log::{enabled, event, Level, Value};
use crate::metrics::Histogram;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's open spans joined with `.` (empty at top level).
pub fn current_span_path() -> String {
    SPAN_STACK.with(|s| s.borrow().join("."))
}

/// Guard returned by [`span`] / [`span_timed`]; closes the span on drop.
#[must_use = "a span ends when the guard drops — bind it with `let`"]
pub struct SpanTimer {
    start: Option<Instant>,
    hist: Option<&'static Histogram>,
    logged: bool,
}

/// Opens a debug-level span named `name`. When `FD_LOG` is below
/// `debug` this is a near-free no-op (no clock read, no stack push).
#[inline]
pub fn span(name: &'static str) -> SpanTimer {
    span_inner(name, None)
}

/// Opens a span that also records its elapsed microseconds into `hist`
/// on close, whatever the log level.
#[inline]
pub fn span_timed(name: &'static str, hist: &'static Histogram) -> SpanTimer {
    span_inner(name, Some(hist))
}

#[inline]
fn span_inner(name: &'static str, hist: Option<&'static Histogram>) -> SpanTimer {
    let logged = enabled(Level::Debug);
    if logged {
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
    }
    let start = (logged || hist.is_some()).then(Instant::now);
    SpanTimer { start, hist, logged }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
        if let Some(hist) = self.hist {
            hist.record(elapsed_us);
        }
        if self.logged {
            // Emit before popping so the event's span path includes the
            // closing span itself.
            event(Level::Debug, "span", &[("elapsed_us", Value::F64(elapsed_us))]);
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{with_capture, with_level};

    #[test]
    fn disabled_span_is_inert() {
        with_level(Level::Off, || {
            let guard = span("quiet");
            assert!(guard.start.is_none());
            assert_eq!(current_span_path(), "");
        });
    }

    #[test]
    fn nested_spans_build_dotted_paths() {
        let ((), lines) = with_capture(|| {
            with_level(Level::Debug, || {
                let _outer = span("fit");
                assert_eq!(current_span_path(), "fit");
                {
                    let _inner = span("epoch");
                    assert_eq!(current_span_path(), "fit.epoch");
                }
                assert_eq!(current_span_path(), "fit");
            })
        });
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"span\":\"fit.epoch\""), "{}", lines[0]);
        assert!(lines[1].contains("\"span\":\"fit\""), "{}", lines[1]);
        assert_eq!(current_span_path(), "", "stack drained");
    }

    #[test]
    fn events_inside_a_span_carry_its_path() {
        let ((), lines) = with_capture(|| {
            with_level(Level::Debug, || {
                let _s = span("outer");
                event(Level::Info, "inside", &[]);
            })
        });
        assert!(lines[0].contains("\"span\":\"outer\""), "{}", lines[0]);
        assert!(lines[0].contains("\"event\":\"inside\""), "{}", lines[0]);
    }

    #[test]
    fn timed_span_records_even_when_logging_is_off() {
        let hist = crate::metrics::histogram("test.span.timed_us", &[1e9]);
        let before = hist.count();
        with_level(Level::Off, || {
            let _t = span_timed("work", hist);
        });
        assert_eq!(hist.count(), before + 1);
        assert_eq!(current_span_path(), "", "no stack entry when logging off");
    }
}

//! The leveled JSONL logger: level resolution from `FD_LOG`, the
//! stderr/file sink from `FD_LOG_FILE`, and event emission.

use crate::json::{push_json_f64, push_json_string};
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Log verbosity, ordered `Off < Error < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is emitted (the default).
    Off,
    /// Failures only.
    Error,
    /// Progress milestones: epochs, corpus generation, bench sections.
    Info,
    /// Everything, including span timings and per-call inference events.
    Debug,
}

impl Level {
    /// Parses an `FD_LOG` value; unknown strings mean [`Level::Off`].
    pub fn parse(raw: &str) -> Level {
        match raw.trim().to_ascii_lowercase().as_str() {
            "error" => Level::Error,
            "info" => Level::Info,
            "debug" | "trace" => Level::Debug,
            _ => Level::Off,
        }
    }

    /// The lowercase name used in event lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static GLOBAL_LEVEL: OnceLock<Level> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`with_level`] (tests).
    static LEVEL_OVERRIDE: Cell<Option<Level>> = const { Cell::new(None) };
    /// Per-thread capture buffer installed by [`with_capture`] (tests).
    static CAPTURE: RefCell<Option<Vec<String>>> = const { RefCell::new(None) };
}

fn global_level() -> Level {
    *GLOBAL_LEVEL
        .get_or_init(|| std::env::var("FD_LOG").map_or(Level::Off, |v| Level::parse(&v)))
}

/// The level in effect on this thread: the [`with_level`] override if
/// active, else the `FD_LOG` global.
pub fn level() -> Level {
    LEVEL_OVERRIDE.with(Cell::get).unwrap_or_else(global_level)
}

/// True when events at `at` should be emitted. `at` must not be
/// [`Level::Off`] — call sites always name a real severity.
#[inline]
pub fn enabled(at: Level) -> bool {
    debug_assert!(at != Level::Off, "enabled(Off) is meaningless");
    at <= level()
}

/// Runs `f` with the log level pinned to `pinned` on this thread,
/// restoring the previous setting afterwards (also on panic).
pub fn with_level<T>(pinned: Level, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Level>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LEVEL_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(LEVEL_OVERRIDE.with(|o| o.replace(Some(pinned))));
    f()
}

/// Runs `f` capturing every event line this thread emits, returning
/// `f`'s result and the captured lines. Used by tests; capture takes
/// precedence over the global sink.
pub fn with_capture<T>(f: impl FnOnce() -> T) -> (T, Vec<String>) {
    struct Restore(Option<Vec<String>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CAPTURE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let mut restore = Restore(CAPTURE.with(|c| c.borrow_mut().replace(Vec::new())));
    let value = f();
    let lines = CAPTURE
        .with(|c| std::mem::replace(&mut *c.borrow_mut(), restore.0.take()))
        .unwrap_or_default();
    std::mem::forget(restore);
    (value, lines)
}

/// One event field value. `From` impls cover the numeric types the
/// workspace uses, so call sites write `("loss", loss.into())`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, sizes, indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float; non-finite values serialise as `null`.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text, escaped on write.
    Str(String),
}

impl Value {
    fn push_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => push_json_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => push_json_string(out, s),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(f64::from(v))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

static START: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the first observation in this process (monotonic).
fn ts_us() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// The same monotonic clock, for the metrics snapshot header.
pub(crate) fn snapshot_ts_us() -> u64 {
    ts_us()
}

enum Sink {
    Stderr,
    File(Mutex<File>),
}

static SINK: OnceLock<Sink> = OnceLock::new();

fn sink() -> &'static Sink {
    SINK.get_or_init(|| match std::env::var("FD_LOG_FILE") {
        Ok(path) if !path.is_empty() => match File::create(&path) {
            Ok(f) => Sink::File(Mutex::new(f)),
            Err(e) => {
                eprintln!("fd-obs: cannot open FD_LOG_FILE={path}: {e}; using stderr");
                Sink::Stderr
            }
        },
        _ => Sink::Stderr,
    })
}

fn emit_line(line: String) {
    let line = match CAPTURE.with(|c| {
        let mut cap = c.borrow_mut();
        match cap.as_mut() {
            Some(buf) => {
                buf.push(line);
                None
            }
            None => Some(line),
        }
    }) {
        Some(line) => line,
        None => return,
    };
    match sink() {
        Sink::Stderr => {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{line}");
        }
        Sink::File(file) => {
            // Lines are written whole under the lock (no BufWriter), so
            // the JSONL file is valid even if the process is killed and
            // concurrent threads never interleave within a line.
            let mut file = file.lock().expect("fd-obs sink poisoned");
            let _ = writeln!(file, "{line}");
        }
    }
}

/// Emits one structured JSONL event if `at` is enabled. The line carries
/// a monotonic timestamp, the calling thread's span path, the event
/// `name` and the `fields` payload; see the crate docs for the schema.
pub fn event(at: Level, name: &str, fields: &[(&str, Value)]) {
    if !enabled(at) {
        return;
    }
    let mut line = String::with_capacity(96 + 24 * fields.len());
    line.push_str("{\"ts_us\":");
    let _ = write!(line, "{}", ts_us());
    line.push_str(",\"level\":\"");
    line.push_str(at.as_str());
    line.push_str("\",\"span\":");
    push_json_string(&mut line, &crate::span::current_span_path());
    line.push_str(",\"event\":");
    push_json_string(&mut line, name);
    line.push_str(",\"fields\":{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        push_json_string(&mut line, key);
        line.push(':');
        value.push_json(&mut line);
    }
    line.push_str("}}");
    emit_line(line);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_levels_and_defaults_off() {
        assert_eq!(Level::parse("debug"), Level::Debug);
        assert_eq!(Level::parse(" Info "), Level::Info);
        assert_eq!(Level::parse("ERROR"), Level::Error);
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("banana"), Level::Off);
        assert_eq!(Level::parse(""), Level::Off);
    }

    #[test]
    fn ordering_gates_emission() {
        with_level(Level::Info, || {
            assert!(enabled(Level::Error));
            assert!(enabled(Level::Info));
            assert!(!enabled(Level::Debug));
        });
        with_level(Level::Off, || {
            assert!(!enabled(Level::Error));
        });
    }

    #[test]
    fn with_level_restores_on_panic() {
        let before = level();
        let caught = std::panic::catch_unwind(|| with_level(Level::Debug, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(level(), before);
    }

    #[test]
    fn below_level_events_are_dropped() {
        let ((), lines) = with_capture(|| {
            with_level(Level::Error, || {
                event(Level::Info, "ignored", &[]);
                event(Level::Error, "kept", &[]);
            })
        });
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"event\":\"kept\""));
    }

    #[test]
    fn capture_is_scoped() {
        let ((), outer) = with_capture(|| {
            with_level(Level::Debug, || {
                event(Level::Debug, "outer", &[]);
                let ((), inner) = with_capture(|| event(Level::Debug, "inner", &[]));
                assert_eq!(inner.len(), 1);
                event(Level::Debug, "outer2", &[]);
            })
        });
        assert_eq!(outer.len(), 2, "inner capture must not leak: {outer:?}");
    }

    #[test]
    fn field_values_serialise_by_kind() {
        let ((), lines) = with_capture(|| {
            with_level(Level::Debug, || {
                event(
                    Level::Debug,
                    "kinds",
                    &[
                        ("u", 7usize.into()),
                        ("i", (-3i64).into()),
                        ("f", 0.5f64.into()),
                        ("b", true.into()),
                        ("s", "x\"y".into()),
                    ],
                );
            })
        });
        let line = &lines[0];
        assert!(line.contains("\"u\":7"), "{line}");
        assert!(line.contains("\"i\":-3"), "{line}");
        assert!(line.contains("\"f\":0.5"), "{line}");
        assert!(line.contains("\"b\":true"), "{line}");
        assert!(line.contains("\"s\":\"x\\\"y\""), "{line}");
    }

    #[test]
    fn timestamps_are_monotonic() {
        let ((), lines) = with_capture(|| {
            with_level(Level::Debug, || {
                event(Level::Debug, "a", &[]);
                event(Level::Debug, "b", &[]);
            })
        });
        let ts = |line: &str| -> u64 {
            let rest = line.strip_prefix("{\"ts_us\":").unwrap();
            rest[..rest.find(',').unwrap()].parse().unwrap()
        };
        assert!(ts(&lines[0]) <= ts(&lines[1]));
    }
}

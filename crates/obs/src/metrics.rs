//! The global metrics registry: counters, gauges and fixed-bucket
//! histograms, all recorded with relaxed atomics so hot paths pay a
//! handful of nanoseconds per observation. Registration (name lookup)
//! takes a mutex; hot call sites cache the returned `&'static` handle
//! in a `OnceLock` so the lock is taken once per process.

use crate::json::{push_json_f64, push_json_string};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins f64 (stored as bits in an atomic word).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Adds `delta` (negative to subtract) with a CAS loop, so
    /// concurrent increments never lose updates — the primitive behind
    /// in-flight/queue-depth style gauges.
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A fixed-bucket histogram over `bounds.len() + 1` buckets: bucket `i`
/// counts observations `v` with `bounds[i-1] < v <= bounds[i]`; the
/// first bucket absorbs everything `<= bounds[0]` (underflow) and the
/// last everything `> bounds[last]` (overflow). Also tracks the total
/// count and sum so means survive the bucketing.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "Histogram: need at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "Histogram: bounds must be strictly ascending: {bounds:?}"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.into(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 sum via CAS loop (there is no atomic float add in std).
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The bucket upper bounds this histogram was registered with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, `bounds().len() + 1` entries (last = overflow).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0..=1.0`) estimated by linear interpolation
    /// within the bucket holding the target rank — the same estimator
    /// Prometheus' `histogram_quantile` uses. The first bucket
    /// interpolates from 0, and ranks landing in the overflow bucket
    /// clamp to the largest bound (the histogram has no upper edge
    /// there). Returns `NaN` when nothing has been recorded.
    pub fn percentile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if c > 0 && cum as f64 >= rank {
                if i >= self.bounds.len() {
                    return *self.bounds.last().expect("histogram has bounds");
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let frac = ((rank - prev as f64) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * frac;
            }
        }
        *self.bounds.last().expect("histogram has bounds")
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// Registry maps are only mutated by completed insertions, so a panic
/// elsewhere while the lock was held cannot leave them inconsistent —
/// recover from poisoning rather than cascading the panic.
fn lock_map<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The counter registered under `name`, created on first use. The
/// handle is `&'static`; hot paths should cache it in a `OnceLock`.
pub fn counter(name: &str) -> &'static Counter {
    let mut map = lock_map(&registry().counters);
    map.entry(name.to_string()).or_insert_with(|| Box::leak(Box::default()))
}

/// The gauge registered under `name`, created on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut map = lock_map(&registry().gauges);
    map.entry(name.to_string()).or_insert_with(|| Box::leak(Box::default()))
}

/// The histogram registered under `name`, created with `bounds` on
/// first use. Later calls return the existing histogram unchanged (the
/// first registration's bounds win).
pub fn histogram(name: &str, bounds: &[f64]) -> &'static Histogram {
    let mut map = lock_map(&registry().histograms);
    map.entry(name.to_string()).or_insert_with(|| Box::leak(Box::new(Histogram::new(bounds))))
}

/// `count` exponentially spaced bucket bounds starting at `start`:
/// `start, start*factor, start*factor², …`.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count >= 1, "exponential_buckets: bad shape");
    let mut bounds = Vec::with_capacity(count);
    let mut bound = start;
    for _ in 0..count {
        bounds.push(bound);
        bound *= factor;
    }
    bounds
}

/// Sorted `(name, value)` pairs of every registered counter — the
/// iteration surface the Prometheus exporter reads.
pub(crate) fn all_counters() -> Vec<(String, u64)> {
    lock_map(&registry().counters).iter().map(|(n, c)| (n.clone(), c.get())).collect()
}

/// Sorted `(name, value)` pairs of every registered gauge.
pub(crate) fn all_gauges() -> Vec<(String, f64)> {
    lock_map(&registry().gauges).iter().map(|(n, g)| (n.clone(), g.get())).collect()
}

/// Sorted `(name, handle)` pairs of every registered histogram.
pub(crate) fn all_histograms() -> Vec<(String, &'static Histogram)> {
    lock_map(&registry().histograms).iter().map(|(n, h)| (n.clone(), *h)).collect()
}

/// Serialises every registered metric to pretty-printed JSON:
/// `{"counters": {..}, "gauges": {..}, "histograms": {name: {bounds,
/// buckets, count, sum}}}`. Map keys are sorted, so the output is
/// deterministic given the same recorded values.
pub fn snapshot() -> String {
    let reg = registry();
    let mut out = String::with_capacity(1 << 10);
    out.push_str("{\n  \"ts_us\": ");
    let _ = write!(out, "{}", crate::log::snapshot_ts_us());
    out.push_str(",\n  \"counters\": {");
    {
        let counters = lock_map(&reg.counters);
        for (i, (name, c)) in counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_string(&mut out, name);
            let _ = write!(out, ": {}", c.get());
        }
        if !counters.is_empty() {
            out.push_str("\n  ");
        }
    }
    out.push_str("},\n  \"gauges\": {");
    {
        let gauges = lock_map(&reg.gauges);
        for (i, (name, g)) in gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_string(&mut out, name);
            out.push_str(": ");
            push_json_f64(&mut out, g.get());
        }
        if !gauges.is_empty() {
            out.push_str("\n  ");
        }
    }
    out.push_str("},\n  \"histograms\": {");
    {
        let histograms = lock_map(&reg.histograms);
        for (i, (name, h)) in histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_json_string(&mut out, name);
            out.push_str(": {\"bounds\": [");
            for (j, &b) in h.bounds().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                push_json_f64(&mut out, b);
            }
            out.push_str("], \"buckets\": [");
            for (j, n) in h.bucket_counts().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{n}");
            }
            let _ = write!(out, "], \"count\": {}, \"sum\": ", h.count());
            push_json_f64(&mut out, h.sum());
            out.push('}');
        }
        if !histograms.is_empty() {
            out.push_str("\n  ");
        }
    }
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = counter("test.metrics.counter");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        assert!(std::ptr::eq(c, counter("test.metrics.counter")), "same handle");
    }

    #[test]
    fn gauge_overwrites() {
        let g = gauge("test.metrics.gauge");
        g.set(2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn histogram_sum_and_count() {
        let h = histogram("test.metrics.hist_sum", &[1.0, 2.0]);
        h.record(0.5);
        h.record(1.5);
        h.record(100.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 102.0);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn gauge_add_accumulates() {
        let g = gauge("test.metrics.gauge_add");
        g.set(1.0);
        g.add(2.5);
        g.add(-0.5);
        assert_eq!(g.get(), 3.0);
    }

    #[test]
    fn percentile_interpolates_within_buckets() {
        let h = histogram("test.metrics.hist_pct", &[10.0, 20.0, 40.0]);
        assert!(h.percentile(0.5).is_nan(), "empty histogram");
        // 10 observations in (10, 20]: rank q*10 lands fraction q into it.
        for _ in 0..10 {
            h.record(15.0);
        }
        assert_eq!(h.percentile(0.5), 15.0);
        assert_eq!(h.percentile(1.0), 20.0);
        // One overflow observation clamps the top quantile to the last bound.
        h.record(1000.0);
        assert_eq!(h.percentile(1.0), 40.0);
    }

    #[test]
    fn percentile_first_bucket_interpolates_from_zero() {
        let h = histogram("test.metrics.hist_pct0", &[8.0, 16.0]);
        for _ in 0..4 {
            h.record(1.0);
        }
        assert_eq!(h.percentile(0.5), 4.0);
    }

    #[test]
    fn histogram_first_registration_wins() {
        let a = histogram("test.metrics.hist_dup", &[1.0]);
        let b = histogram("test.metrics.hist_dup", &[9.0, 10.0]);
        assert!(std::ptr::eq(a, b));
        assert_eq!(b.bounds(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = histogram("test.metrics.hist_bad", &[2.0, 1.0]);
    }

    #[test]
    fn exponential_buckets_grow_geometrically() {
        assert_eq!(exponential_buckets(1.0, 4.0, 4), vec![1.0, 4.0, 16.0, 64.0]);
    }

    #[test]
    fn snapshot_is_sorted_and_contains_registered_names() {
        counter("test.snap.b").inc();
        counter("test.snap.a").inc();
        gauge("test.snap.g").set(0.25);
        histogram("test.snap.h", &[1.0, 10.0]).record(3.0);
        let snap = snapshot();
        let a = snap.find("test.snap.a").expect("a present");
        let b = snap.find("test.snap.b").expect("b present");
        assert!(a < b, "sorted order");
        assert!(snap.contains("\"test.snap.g\": 0.25"), "{snap}");
        assert!(snap.contains("\"bounds\": [1, 10]"), "{snap}");
    }
}

//! Prometheus text exposition (format version 0.0.4) over the global
//! metrics registry, plus a validating parser for the same format.
//!
//! [`prometheus_text`] renders every registered counter, gauge and
//! histogram as a scrape document: dotted fd-obs names are sanitised to
//! the Prometheus charset and prefixed `fd_` (`serve.queue_depth` →
//! `fd_serve_queue_depth`), counters get the conventional `_total`
//! suffix, and histograms expose cumulative `_bucket{le="..."}` series
//! with the spec-mandated `le="+Inf"` bucket plus `_sum`/`_count`.
//! Serve exposes this at `GET /metrics` with the
//! [`PROMETHEUS_CONTENT_TYPE`] header (the JSON snapshot stays at
//! `/metrics?format=json`).
//!
//! [`validate_prometheus`] is the consumer-side check used by
//! `fdctl obs --check` and the golden tests: it parses a scrape
//! document line by line, verifying name/label syntax, that every
//! sample belongs to a `# TYPE`-declared family, and that each
//! histogram's `+Inf` bucket equals its `_count`.

use crate::metrics::{all_counters, all_gauges, all_histograms};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The Content-Type a Prometheus scraper expects from a 0.0.4 text
/// exposition endpoint.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// An fd-obs metric name mapped into the Prometheus charset: every
/// character outside `[a-zA-Z0-9_]` becomes `_`, with an `fd_`
/// namespace prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("fd_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// HELP text with the spec's escaping (`\\` and `\n`).
fn push_help_escaped(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// A float in Prometheus sample syntax (`+Inf`/`-Inf`/`NaN`, else
/// Rust's shortest decimal form, which Go's parser accepts).
fn push_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Renders the whole registry as a Prometheus 0.0.4 text scrape.
/// Families are emitted in sorted name order (counters, then gauges,
/// then histograms), so the output is deterministic for a given set of
/// recorded values.
pub fn prometheus_text() -> String {
    let mut out = String::with_capacity(1 << 12);
    for (name, value) in all_counters() {
        let mut base = prom_name(&name);
        if !base.ends_with("_total") {
            base.push_str("_total");
        }
        let _ = write!(out, "# HELP {base} ");
        push_help_escaped(&mut out, &format!("fd-obs counter {name}"));
        let _ = writeln!(out, "\n# TYPE {base} counter\n{base} {value}");
    }
    for (name, value) in all_gauges() {
        let base = prom_name(&name);
        let _ = write!(out, "# HELP {base} ");
        push_help_escaped(&mut out, &format!("fd-obs gauge {name}"));
        let _ = write!(out, "\n# TYPE {base} gauge\n{base} ");
        push_value(&mut out, value);
        out.push('\n');
    }
    for (name, hist) in all_histograms() {
        let base = prom_name(&name);
        let _ = write!(out, "# HELP {base} ");
        push_help_escaped(&mut out, &format!("fd-obs histogram {name}"));
        let _ = writeln!(out, "\n# TYPE {base} histogram");
        let counts = hist.bucket_counts();
        let mut cum = 0u64;
        for (bound, count) in hist.bounds().iter().zip(&counts) {
            cum += count;
            let _ = write!(out, "{base}_bucket{{le=\"");
            push_value(&mut out, *bound);
            let _ = writeln!(out, "\"}} {cum}");
        }
        cum += counts.last().copied().unwrap_or(0);
        let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {cum}");
        let _ = write!(out, "{base}_sum ");
        push_value(&mut out, hist.sum());
        // _count mirrors the +Inf bucket (the spec requires equality),
        // so a scrape racing a writer still validates.
        let _ = write!(out, "\n{base}_count {cum}\n");
    }
    out
}

/// One parsed sample line: name, labels, value.
struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        s => s.parse().ok(),
    }
}

/// Parses `name{k="v",...} value [timestamp]`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find(['{', ' ', '\t']) {
        Some(i) => line.split_at(i),
        None => return Err(format!("sample has no value: {line:?}")),
    };
    if !valid_metric_name(name_part) {
        return Err(format!("bad metric name {name_part:?}"));
    }
    let mut labels = BTreeMap::new();
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let Some(end) = body.find('}') else {
            return Err(format!("unclosed label braces: {line:?}"));
        };
        let (label_str, tail) = body.split_at(end);
        for pair in label_str.split(',').filter(|p| !p.is_empty()) {
            let Some((k, v)) = pair.split_once('=') else {
                return Err(format!("bad label pair {pair:?} in {line:?}"));
            };
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted label value {v:?} in {line:?}"))?;
            if !valid_metric_name(k) {
                return Err(format!("bad label name {k:?} in {line:?}"));
            }
            labels.insert(k.to_string(), v.to_string());
        }
        &tail[1..]
    } else {
        rest
    };
    let mut fields = rest.split_ascii_whitespace();
    let Some(value_str) = fields.next() else {
        return Err(format!("sample has no value: {line:?}"));
    };
    let value =
        parse_value(value_str).ok_or_else(|| format!("bad value {value_str:?} in {line:?}"))?;
    if let Some(ts) = fields.next() {
        ts.parse::<i64>().map_err(|_| format!("bad timestamp {ts:?} in {line:?}"))?;
    }
    if fields.next().is_some() {
        return Err(format!("trailing tokens in {line:?}"));
    }
    Ok(Sample { name: name_part.to_string(), labels, value })
}

/// Validates a Prometheus 0.0.4 text scrape. Checks line syntax, that
/// every sample's family has a preceding `# TYPE`, and that every
/// histogram family's `le="+Inf"` bucket equals its `_count`. Returns
/// the number of sample lines on success.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut fields = comment.split_ascii_whitespace();
            match fields.next() {
                Some("TYPE") => {
                    let name = fields
                        .next()
                        .ok_or_else(|| format!("line {lineno}: TYPE without a name"))?;
                    let kind =
                        fields.next().ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: bad TYPE name {name:?}"));
                    }
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {lineno}: unknown TYPE kind {kind:?}"));
                    }
                    types.insert(name.to_string(), kind.to_string());
                }
                Some("HELP") => {
                    let name = fields
                        .next()
                        .ok_or_else(|| format!("line {lineno}: HELP without a name"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: bad HELP name {name:?}"));
                    }
                }
                _ => {} // free-form comment
            }
            continue;
        }
        let sample = parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let known = types.contains_key(&sample.name)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                sample
                    .name
                    .strip_suffix(suffix)
                    .is_some_and(|base| types.get(base).map(String::as_str) == Some("histogram"))
            });
        if !known {
            return Err(format!("line {lineno}: sample {:?} has no preceding # TYPE", sample.name));
        }
        samples.push(sample);
    }
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let inf_bucket = samples
            .iter()
            .find(|s| {
                s.name == format!("{family}_bucket")
                    && s.labels.get("le").map(String::as_str) == Some("+Inf")
            })
            .ok_or_else(|| format!("histogram {family} is missing its le=\"+Inf\" bucket"))?;
        let count = samples
            .iter()
            .find(|s| s.name == format!("{family}_count"))
            .ok_or_else(|| format!("histogram {family} is missing {family}_count"))?;
        if inf_bucket.value != count.value {
            return Err(format!(
                "histogram {family}: +Inf bucket {} != _count {}",
                inf_bucket.value, count.value
            ));
        }
    }
    Ok(samples.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, gauge, histogram};

    #[test]
    fn names_are_sanitised_and_prefixed() {
        assert_eq!(prom_name("serve.queue_depth"), "fd_serve_queue_depth");
        assert_eq!(prom_name("a-b c"), "fd_a_b_c");
    }

    #[test]
    fn exposition_round_trips_through_validator() {
        counter("test.prom.requests").add(7);
        gauge("test.prom.depth").set(3.5);
        histogram("test.prom.latency_us", &[10.0, 100.0]).record(42.0);
        let text = prometheus_text();
        let n = validate_prometheus(&text).expect("own exposition must validate");
        assert!(n >= 7, "counter + gauge + 3 buckets + sum + count, got {n}");
        assert!(text.contains("# TYPE fd_test_prom_requests_total counter"), "{text}");
        assert!(text.contains("fd_test_prom_requests_total 7"), "{text}");
        assert!(text.contains("fd_test_prom_depth 3.5"), "{text}");
        assert!(text.contains("fd_test_prom_latency_us_bucket{le=\"+Inf\"}"), "{text}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_prometheus("no_type_decl 1\n").is_err(), "sample without TYPE");
        assert!(
            validate_prometheus("# TYPE x counter\nx not-a-number\n").is_err(),
            "unparseable value"
        );
        assert!(
            validate_prometheus("# TYPE 9bad counter\n9bad 1\n").is_err(),
            "name starting with a digit"
        );
        assert!(
            validate_prometheus(
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n"
            )
            .is_err(),
            "+Inf bucket must equal _count"
        );
        let ok = "# HELP h help text\n# TYPE h histogram\nh_bucket{le=\"0.5\"} 1\n\
                  h_bucket{le=\"+Inf\"} 2\nh_sum 1.5\nh_count 2\n";
        assert_eq!(validate_prometheus(ok).unwrap(), 4);
    }

    #[test]
    fn values_use_prometheus_float_syntax() {
        let mut s = String::new();
        push_value(&mut s, f64::INFINITY);
        s.push(' ');
        push_value(&mut s, f64::NEG_INFINITY);
        s.push(' ');
        push_value(&mut s, f64::NAN);
        s.push(' ');
        push_value(&mut s, 0.25);
        assert_eq!(s, "+Inf -Inf NaN 0.25");
    }
}

//! The shared JSON string/number writer.
//!
//! Every place in the workspace that hand-rolls JSON (the JSONL logger
//! here, the metrics snapshot, `fd-metrics`' result series) goes through
//! these helpers so escaping is implemented exactly once.

use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted JSON string, escaping quotes,
/// backslashes, and control characters per RFC 8259.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The escaped *body* of `s` as a JSON string, without the surrounding
/// quotes. `escape_json("a\"b")` is `a\"b`.
pub fn escape_json(s: &str) -> String {
    let mut quoted = String::with_capacity(s.len() + 2);
    push_json_string(&mut quoted, s);
    quoted[1..quoted.len() - 1].to_string()
}

/// Appends `v` as a JSON number. `{}` on f64 prints the shortest
/// decimal that round-trips the exact bits; JSON has no non-finite
/// literals, so NaN/inf become `null` (matching `serde_json`).
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quoted(s: &str) -> String {
        let mut out = String::new();
        push_json_string(&mut out, s);
        out
    }

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(quoted("a\"b"), "\"a\\\"b\"");
        assert_eq!(quoted("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(quoted("\n\t\r\u{8}\u{c}"), "\"\\n\\t\\r\\b\\f\"");
        assert_eq!(quoted("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn passes_unicode_through() {
        assert_eq!(quoted("é 中"), "\"é 中\"");
    }

    #[test]
    fn numbers_render_and_nonfinite_is_null() {
        let mut out = String::new();
        push_json_f64(&mut out, 0.5);
        out.push(',');
        push_json_f64(&mut out, -3.0);
        out.push(',');
        push_json_f64(&mut out, f64::NAN);
        out.push(',');
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "0.5,-3,null,null");
    }

    #[test]
    fn f64_display_round_trips() {
        for &v in &[0.1f64, 1e-300, 123456.789, f64::from(0.3f32)] {
            let mut out = String::new();
            push_json_f64(&mut out, v);
            assert_eq!(out.parse::<f64>().unwrap().to_bits(), v.to_bits(), "{out}");
        }
    }
}

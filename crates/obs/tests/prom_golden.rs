//! Golden test for the Prometheus text exposition: the rendered scrape
//! for a known set of metrics must match byte-for-byte, and the whole
//! document must pass fd-obs's own validator. Runs as its own test
//! binary so the global registry holds exactly these metrics.

#[test]
fn exposition_matches_golden_output() {
    fd_obs::counter("serve.responses_2xx").add(12);
    fd_obs::gauge("serve.queue_depth").set(3.0);
    fd_obs::gauge("serve.inflight_requests").set(0.5);
    let h = fd_obs::histogram("serve.queue_wait_us", &[100.0, 1000.0, 10000.0]);
    h.record(50.0); // underflow bucket
    h.record(150.0);
    h.record(700.0);
    h.record(1e9); // overflow bucket

    let text = fd_obs::prometheus_text();
    let golden = "\
# HELP fd_serve_responses_2xx_total fd-obs counter serve.responses_2xx
# TYPE fd_serve_responses_2xx_total counter
fd_serve_responses_2xx_total 12
# HELP fd_serve_inflight_requests fd-obs gauge serve.inflight_requests
# TYPE fd_serve_inflight_requests gauge
fd_serve_inflight_requests 0.5
# HELP fd_serve_queue_depth fd-obs gauge serve.queue_depth
# TYPE fd_serve_queue_depth gauge
fd_serve_queue_depth 3
# HELP fd_serve_queue_wait_us fd-obs histogram serve.queue_wait_us
# TYPE fd_serve_queue_wait_us histogram
fd_serve_queue_wait_us_bucket{le=\"100\"} 1
fd_serve_queue_wait_us_bucket{le=\"1000\"} 3
fd_serve_queue_wait_us_bucket{le=\"10000\"} 3
fd_serve_queue_wait_us_bucket{le=\"+Inf\"} 4
fd_serve_queue_wait_us_sum 1000000900
fd_serve_queue_wait_us_count 4
";
    assert_eq!(text, golden, "exposition drifted from golden:\n{text}");
    let samples = fd_obs::validate_prometheus(&text).expect("golden scrape must validate");
    assert_eq!(samples, 9);
}

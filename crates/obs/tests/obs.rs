//! Cross-module contracts of `fd-obs`: histogram bucket edges, counter
//! atomicity under real threads, span nesting, and the JSONL event
//! schema round-tripping through a real JSON parser.

use fd_obs::{
    counter, event, histogram, span, with_capture, with_level, Level,
};

/// Every bucket edge, including the implicit under/overflow buckets:
/// bucket `i` counts `bounds[i-1] < v <= bounds[i]`, the first bucket
/// absorbs `v <= bounds[0]`, the last `v > bounds[last]`.
#[test]
fn histogram_bucket_boundaries() {
    let h = histogram("test.obs.buckets", &[1.0, 10.0, 100.0]);
    // (value, expected bucket index)
    let cases = [
        (-5.0, 0), // deep underflow
        (0.999, 0),
        (1.0, 0), // on the first bound: inclusive upper edge
        (1.001, 1),
        (10.0, 1),
        (10.5, 2),
        (100.0, 2),
        (100.001, 3), // overflow
        (1e12, 3),
    ];
    for &(v, _) in &cases {
        h.record(v);
    }
    let counts = h.bucket_counts();
    assert_eq!(counts.len(), 4, "bounds.len() + 1 buckets");
    let mut expect = vec![0u64; 4];
    for &(_, idx) in &cases {
        expect[idx] += 1;
    }
    assert_eq!(counts, expect);
    assert_eq!(h.count(), cases.len() as u64);
}

/// Concurrent increments from scoped threads must never lose counts.
/// This is the contract the tensor kernels rely on when `FD_THREADS>1`
/// workers bump dispatch counters and shard histograms concurrently.
#[test]
fn counter_is_atomic_under_thread_scope() {
    let c = counter("test.obs.atomic_counter");
    let h = histogram("test.obs.atomic_hist", &[10.0, 1000.0]);
    let before_c = c.get();
    let before_h = h.count();
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record((t * PER_THREAD + i) as f64);
                }
            });
        }
    });
    assert_eq!(c.get() - before_c, (THREADS * PER_THREAD) as u64);
    assert_eq!(h.count() - before_h, (THREADS * PER_THREAD) as u64);
    let total: u64 = h.bucket_counts().iter().sum();
    assert_eq!(total - before_h, (THREADS * PER_THREAD) as u64, "no lost bucket increments");
}

/// Nested spans produce dotted parent paths in emitted events, and the
/// stack unwinds correctly (also across a panic inside a span).
#[test]
fn span_nesting_produces_parent_paths() {
    let ((), lines) = with_capture(|| {
        with_level(Level::Debug, || {
            let _fit = span("fit");
            {
                let _epoch = span("epoch");
                {
                    let _fwd = span("forward");
                    event(Level::Debug, "leaf", &[]);
                }
            }
        })
    });
    let leaf = lines.iter().find(|l| l.contains("\"event\":\"leaf\"")).expect("leaf event");
    assert!(leaf.contains("\"span\":\"fit.epoch.forward\""), "{leaf}");
    // Span-close events walk back up the tree.
    let closes: Vec<&String> =
        lines.iter().filter(|l| l.contains("\"event\":\"span\"")).collect();
    assert_eq!(closes.len(), 3);
    assert!(closes[0].contains("\"span\":\"fit.epoch.forward\""));
    assert!(closes[1].contains("\"span\":\"fit.epoch\""));
    assert!(closes[2].contains("\"span\":\"fit\""));
    assert_eq!(fd_obs::current_span_path(), "");
}

/// Golden-schema test: a JSONL event line is valid JSON and every field
/// round-trips through a real parser with its exact value.
#[test]
fn event_line_round_trips_as_valid_json() {
    let ((), lines) = with_capture(|| {
        with_level(Level::Debug, || {
            let _s = span("golden");
            event(
                Level::Info,
                "epoch \"quoted\\name",
                &[
                    ("epoch", 3usize.into()),
                    ("loss", 812.53f64.into()),
                    ("delta", (-7i64).into()),
                    ("converged", false.into()),
                    ("note", "line\nbreak and \"quote\"".into()),
                ],
            );
        })
    });
    assert_eq!(lines.len(), 2, "event + span close");
    for line in &lines {
        let parsed: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("invalid JSON {line}: {e}"));
        assert!(parsed["ts_us"].as_u64().is_some(), "{line}");
    }
    let parsed: serde_json::Value = serde_json::from_str(&lines[0]).unwrap();
    assert_eq!(parsed["level"].as_str(), Some("info"));
    assert_eq!(parsed["span"].as_str(), Some("golden"));
    assert_eq!(parsed["event"].as_str(), Some("epoch \"quoted\\name"));
    let fields = parsed["fields"].as_map().expect("fields object");
    let get = |k: &str| serde::content_get(fields, k).expect(k);
    assert_eq!(get("epoch").as_u64(), Some(3));
    assert_eq!(get("loss").as_f64(), Some(812.53));
    assert_eq!(get("delta").as_i64(), Some(-7));
    assert!(matches!(get("converged"), serde::Content::Bool(false)));
    assert_eq!(get("note").as_str(), Some("line\nbreak and \"quote\""));
}

/// The snapshot is itself valid JSON with the three metric families.
#[test]
fn snapshot_parses_as_json() {
    counter("test.obs.snap_counter").add(2);
    fd_obs::gauge("test.obs.snap_gauge").set(1.5);
    histogram("test.obs.snap_hist", &[1.0]).record(0.5);
    let snap = fd_obs::snapshot();
    let parsed: serde_json::Value =
        serde_json::from_str(&snap).unwrap_or_else(|e| panic!("invalid snapshot JSON: {e}\n{snap}"));
    for family in ["counters", "gauges", "histograms"] {
        assert!(parsed[family].as_map().is_some(), "missing {family}:\n{snap}");
    }
    let counters = parsed["counters"].as_map().unwrap();
    let c = serde::content_get(counters, "test.obs.snap_counter").expect("registered counter");
    assert!(c.as_u64().unwrap() >= 2);
}

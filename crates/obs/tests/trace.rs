//! Concurrency tests for the lock-free trace ring: many producer
//! threads hammering `record` concurrently must never produce a torn
//! span (fields from two different writes mixed in one slot) and must
//! stay within the fixed ring capacity. Runs as its own test binary so
//! the process-global ring starts empty.

use fd_obs::trace::{self, Span, TraceCtx};

const THREADS: usize = 8;
const PER_THREAD: usize = 40_000; // >> RING_CAPACITY, forces wrap-around overwrites

static NAMES: [&str; THREADS] = [
    "trace.producer.0",
    "trace.producer.1",
    "trace.producer.2",
    "trace.producer.3",
    "trace.producer.4",
    "trace.producer.5",
    "trace.producer.6",
    "trace.producer.7",
];

/// Every field of a span is a fixed function of `(thread, index)`, so
/// any mix of two writes is detectable.
fn expected(thread: usize, index: usize) -> Span {
    let id = (((thread + 1) as u64) << 32) | index as u64;
    Span {
        trace_id: id,
        span_id: id.wrapping_mul(3),
        parent_id: id.wrapping_mul(5),
        name: NAMES[thread],
        start_us: id.wrapping_mul(7),
        dur_us: id.wrapping_mul(11),
    }
}

#[test]
fn concurrent_producers_never_tear_and_memory_stays_bounded() {
    trace::set_enabled(true);
    trace::set_sample(1);
    let before = trace::recorded_total();
    assert_eq!(before, 0, "own test binary, ring starts empty");

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let want = expected(t, i);
                    let ctx = TraceCtx {
                        trace_id: want.trace_id,
                        span_id: want.span_id,
                        parent_id: want.parent_id,
                        sampled: true,
                    };
                    ctx.record(NAMES[t], want.start_us, want.dur_us);
                }
            })
        })
        .collect();
    // Concurrent readers must also never observe a torn span while
    // writers are mid-flight.
    for _ in 0..50 {
        for span in trace::snapshot_spans() {
            check(&span);
        }
    }
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(trace::recorded_total(), (THREADS * PER_THREAD) as u64);
    let spans = trace::take_spans();
    assert!(
        spans.len() <= trace::RING_CAPACITY,
        "ring must stay bounded: {} > {}",
        spans.len(),
        trace::RING_CAPACITY
    );
    // With every slot quiet, the full capacity should be readable.
    assert!(
        spans.len() >= trace::RING_CAPACITY / 2,
        "most slots should be stable once writers stopped: {}",
        spans.len()
    );
    for span in &spans {
        check(span);
    }
    assert!(trace::take_spans().is_empty(), "take_spans drains the ring");
}

/// Asserts `span` is exactly some `(thread, index)` write, untorn.
fn check(span: &Span) {
    let thread = (span.trace_id >> 32) as usize - 1;
    let index = (span.trace_id & 0xffff_ffff) as usize;
    assert!(thread < THREADS && index < PER_THREAD, "unknown id {:x}", span.trace_id);
    let want = expected(thread, index);
    assert_eq!(*span, want, "torn span detected");
}

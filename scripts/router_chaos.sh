#!/usr/bin/env sh
# Chaos drill for the sharded serving tier (`fdctl route` + N×M
# `fdctl serve --shard i/n` workers):
#
# 1. Train a bundle, start 2 shards × 2 replicas plus an unsharded
#    control server, and front the shards with the router (bulk-job
#    spool enabled).
# 2. Routed answers must be byte-identical to the control server's.
# 3. Drive continuous /v1/predict load, `kill -9` one replica mid-load:
#    every routed request must still come back 200, and the router's
#    breaker-open counter must increment.
# 4. SIGHUP-reload a surviving shard worker under the same load — the
#    tier must not drop a request while the worker swaps its bundle.
# 5. Submit a bulk-scoring job, `kill -9` the router mid-job, restart
#    it on the same spool: the acknowledged job must finish and serve
#    its results — the crash-safe spool is the guarantee under test.
# 6. The killed replica restarts on its old port and the router's
#    half-open probe folds it back in (healthz all-up, breaker closed).
#
# Usage: scripts/router_chaos.sh
#
# Exits non-zero, naming the step, on any violation.
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/fd-chaos-XXXXXX")"
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in $pids; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
    echo "router_chaos.sh: $1" >&2
    shift
    for log in "$@"; do
        echo "---- $log" >&2
        cat "$log" >&2 || true
    done
    exit 1
}

echo "==> build fdctl (release)" >&2
cargo build --release --bin fdctl
fdctl=target/release/fdctl

echo "==> generate corpus + train a bundle" >&2
"$fdctl" generate --scale 0.02 --seed 7 --out "$work/corpus.json"
"$fdctl" train --corpus "$work/corpus.json" --out "$work/model.json" \
    --epochs 1 --seed 42 --mode binary

# Fixed ports (the tier topology is static and the killed replica must
# rebind its old address), offset by PID to dodge parallel runs.
base=$((21000 + $$ % 9000))
p_control=$base
p_s0r0=$((base + 1))
p_s0r1=$((base + 2))
p_s1r0=$((base + 3))
p_s1r1=$((base + 4))
p_router=$((base + 5))

serve() { # serve <port> <shard-spec-or-"-"> <log>
    if [ "$2" = "-" ]; then
        "$fdctl" serve --corpus "$work/corpus.json" --model "$work/model.json" \
            --addr "127.0.0.1:$1" >"$3" 2>&1 &
    else
        "$fdctl" serve --corpus "$work/corpus.json" --model "$work/model.json" \
            --addr "127.0.0.1:$1" --shard "$2" >"$3" 2>&1 &
    fi
    pids="$pids $!"
    echo "$!"
}

wait_healthy() { # wait_healthy <port> <what>
    tries=0
    until curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        tries=$((tries + 1))
        [ "$tries" -gt 200 ] && fail "$2 (port $1) never became healthy" "$work"/*.log
        sleep 0.1
    done
}

echo "==> start control + 2 shards x 2 replicas + router" >&2
control_pid="$(serve "$p_control" - "$work/control.log")"
victim_pid="$(serve "$p_s0r0" 0/2 "$work/s0r0.log")"
serve "$p_s0r1" 0/2 "$work/s0r1.log" >/dev/null
reload_pid="$(serve "$p_s1r0" 1/2 "$work/s1r0.log")"
serve "$p_s1r1" 1/2 "$work/s1r1.log" >/dev/null
for port in "$p_control" "$p_s0r0" "$p_s0r1" "$p_s1r0" "$p_s1r1"; do
    wait_healthy "$port" "worker"
done
"$fdctl" route \
    --shards "127.0.0.1:$p_s0r0,127.0.0.1:$p_s0r1;127.0.0.1:$p_s1r0,127.0.0.1:$p_s1r1" \
    --addr "127.0.0.1:$p_router" --spool-dir "$work/spool" >"$work/router.log" 2>&1 &
router_pid=$!
pids="$pids $router_pid"
wait_healthy "$p_router" "router"

post() { # post <port> <path> <body> — prints the HTTP status code
    curl -s -o "$work/last_body.json" -w '%{http_code}' -X POST \
        -d "$3" "http://127.0.0.1:$1$2"
}

echo "==> routed answers are byte-identical to the control server" >&2
for body in '{"id":0}' '{"id":1}' \
    '{"text":"claim about the budget deficit and medicare","creator":0,"subjects":[0]}'; do
    [ "$(post "$p_control" /v1/predict "$body")" = "200" ] \
        || fail "control predict failed for $body" "$work/last_body.json"
    mv "$work/last_body.json" "$work/control_answer.json"
    [ "$(post "$p_router" /v1/predict "$body")" = "200" ] \
        || fail "routed predict failed for $body" "$work/last_body.json"
    cmp -s "$work/control_answer.json" "$work/last_body.json" \
        || fail "routed answer differs from control for $body" \
            "$work/control_answer.json" "$work/last_body.json"
done

echo "==> drive load, kill -9 one replica mid-load" >&2
: >"$work/codes.txt"
(
    while [ ! -e "$work/stop" ]; do
        post "$p_router" /v1/predict '{"id":0}' >>"$work/codes.txt"
        printf '\n' >>"$work/codes.txt"
        post "$p_router" /v1/predict \
            '{"text":"late-breaking claim on the deficit","creator":1}' >>"$work/codes.txt"
        printf '\n' >>"$work/codes.txt"
    done
) &
load_pid=$!
sleep 1
kill -9 "$victim_pid" 2>/dev/null || fail "victim replica already dead"
wait "$victim_pid" 2>/dev/null || true
sleep 3

echo "==> SIGHUP-reload a surviving shard worker under load" >&2
kill -HUP "$reload_pid"
tries=0
until grep -q 'reload complete' "$work/s1r0.log"; do
    tries=$((tries + 1))
    [ "$tries" -gt 100 ] && fail "shard reload never completed" "$work/s1r0.log"
    sleep 0.1
done
sleep 1

touch "$work/stop"
wait "$load_pid"
total="$(wc -l <"$work/codes.txt")"
bad="$(grep -cv '^200$' "$work/codes.txt" || true)"
echo "==> $total routed requests across the replica kill + reload, $bad non-200" >&2
[ "$total" -gt 20 ] || fail "load generator made too few requests ($total)"
[ "$bad" -eq 0 ] || fail "$bad routed request(s) failed during the chaos window"

echo "==> breaker tripped for the killed replica" >&2
opens="$(curl -s "http://127.0.0.1:$p_router/metrics" \
    | sed -n 's/^fd_router_breaker_opens_total \([0-9]*\).*/\1/p')"
[ -n "$opens" ] && [ "$opens" -ge 1 ] \
    || fail "breaker-open counter never incremented (got '${opens:-absent}')"

echo "==> submit a bulk job, kill -9 the router mid-job, restart on the same spool" >&2
reqs='{"text":"bulk claim 0"}'
i=1
while [ "$i" -lt 300 ]; do
    reqs="$reqs,{\"text\":\"bulk claim $i about the budget\"}"
    i=$((i + 1))
done
[ "$(post "$p_router" /v1/jobs "{\"requests\":[$reqs]}")" = "202" ] \
    || fail "job submit not acknowledged" "$work/last_body.json"
job_id="$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$work/last_body.json")"
[ -n "$job_id" ] || fail "job submit returned no id" "$work/last_body.json"
kill -9 "$router_pid" 2>/dev/null || fail "router already dead" "$work/router.log"
wait "$router_pid" 2>/dev/null || true
"$fdctl" route \
    --shards "127.0.0.1:$p_s0r0,127.0.0.1:$p_s0r1;127.0.0.1:$p_s1r0,127.0.0.1:$p_s1r1" \
    --addr "127.0.0.1:$p_router" --spool-dir "$work/spool" >"$work/router2.log" 2>&1 &
router_pid=$!
pids="$pids $router_pid"
wait_healthy "$p_router" "restarted router"
tries=0
while :; do
    state="$(curl -s "http://127.0.0.1:$p_router/v1/jobs/$job_id" \
        | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')"
    [ "$state" = "done" ] && break
    [ "$state" = "failed" ] && fail "spooled job failed after router restart" "$work/router2.log"
    tries=$((tries + 1))
    [ "$tries" -gt 600 ] && fail "spooled job never completed after restart (state '$state')" \
        "$work/router2.log"
    sleep 0.1
done
curl -s "http://127.0.0.1:$p_router/v1/jobs/$job_id/results" >"$work/results.json"
grep -q '"results":\[\[' "$work/results.json" \
    || fail "completed job served no results" "$work/results.json"
echo "==> spooled job $job_id completed after the router restart" >&2

echo "==> restart the killed replica; the half-open probe folds it back in" >&2
serve "$p_s0r0" 0/2 "$work/s0r0b.log" >/dev/null
wait_healthy "$p_s0r0" "restarted replica"
tries=0
while :; do
    health="$(curl -s "http://127.0.0.1:$p_router/healthz")"
    case "$health" in
    *'"up":0'* | *'"breaker":"open"'*) ;;
    *) break ;;
    esac
    tries=$((tries + 1))
    [ "$tries" -gt 200 ] && fail "restarted replica never rejoined: $health"
    sleep 0.1
done
[ "$(post "$p_router" /v1/predict '{"id":0}')" = "200" ] \
    || fail "post-recovery predict failed" "$work/last_body.json"

echo "==> router chaos drill passed" >&2

#!/usr/bin/env sh
# Crash/recovery drill for the durable-checkpoint path:
#
# 1. Train a control run to completion with per-epoch checkpoints.
# 2. Launch the same run again and SIGKILL it (kill -9, no cleanup
#    handlers) as soon as its first checkpoint file appears on disk —
#    the kill can land mid-epoch or even mid-checkpoint-write; the
#    temp-file + fsync + rename protocol must leave a valid newest-or-
#    previous checkpoint either way.
# 3. Resume the killed run with `--resume` and the identical arguments.
# 4. Byte-compare the final checkpoint of the resumed run against the
#    control run (`cmp`): the bitwise-resume invariant says they are
#    identical, not merely close.
# 5. Gate both files through `fdctl ckpt inspect` (non-zero exit on
#    any section-CRC or header failure).
#
# Usage: scripts/crash_recovery.sh [epochs] [scale]
#
# Exits non-zero, naming the step, on any violation.
set -eu
cd "$(dirname "$0")/.."
epochs="${1:-10}"
scale="${2:-0.02}"

work="$(mktemp -d "${TMPDIR:-/tmp}/fd-crash-XXXXXX")"
trap 'rm -rf "$work"' EXIT INT TERM

echo "==> build fdctl (release)" >&2
cargo build --release --bin fdctl
fdctl=target/release/fdctl

echo "==> generate corpus (scale $scale)" >&2
"$fdctl" generate --scale "$scale" --seed 7 --out "$work/corpus.json"

train() {
    # $1 = bundle path, $2 = checkpoint dir, then extra flags.
    out="$1"; dir="$2"; shift 2
    "$fdctl" train --corpus "$work/corpus.json" --out "$out" \
        --epochs "$epochs" --seed 42 --mode binary \
        --checkpoint-dir "$dir" --checkpoint-every 1 "$@"
}

echo "==> control run ($epochs epochs, checkpoint every epoch)" >&2
train "$work/control.json" "$work/ckpt-control"

echo "==> crash run: SIGKILL after the first checkpoint lands" >&2
# Background the binary itself (not the train() function — that would
# fork a subshell, and kill -9 on the subshell would orphan a still-
# running fdctl that keeps writing checkpoints).
"$fdctl" train --corpus "$work/corpus.json" --out "$work/crash.json" \
    --epochs "$epochs" --seed 42 --mode binary \
    --checkpoint-dir "$work/ckpt-crash" --checkpoint-every 1 &
pid=$!
while [ -z "$(find "$work/ckpt-crash" -name '*.fdck' 2>/dev/null | head -1)" ]; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "crash_recovery.sh: training exited before it could be killed" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$pid"
wait "$pid" 2>/dev/null && {
    echo "crash_recovery.sh: run survived SIGKILL?" >&2
    exit 1
}
[ -e "$work/crash.json" ] && {
    echo "crash_recovery.sh: killed run finished before the kill; nothing was exercised" >&2
    exit 1
}
echo "==> killed mid-run; surviving checkpoints:" >&2
ls "$work/ckpt-crash" >&2

echo "==> resume the killed run" >&2
train "$work/crash.json" "$work/ckpt-crash" --resume

latest() {
    find "$1" -name '*.fdck' | sort | tail -1
}
control_final="$(latest "$work/ckpt-control")"
crash_final="$(latest "$work/ckpt-crash")"
echo "==> byte-diff $control_final vs $crash_final" >&2
[ "$(basename "$control_final")" = "$(basename "$crash_final")" ] || {
    echo "crash_recovery.sh: runs ended at different epochs" >&2
    exit 1
}
if ! cmp "$control_final" "$crash_final"; then
    echo "crash_recovery.sh: resumed run diverged bitwise from the control run" >&2
    exit 1
fi

echo "==> verify both with fdctl ckpt inspect" >&2
"$fdctl" ckpt inspect "$control_final"
"$fdctl" ckpt inspect "$crash_final"
echo "==> crash/recovery drill passed" >&2

#!/usr/bin/env sh
# Regenerates the benchmark artifacts at the repo root:
#
# * BENCH_tensor.json — seed-era naive tensor kernels vs the blocked
#   serial kernels and the row-parallel path (FD_THREADS=4), plus a
#   full model inference step (per-node tape replay vs batched
#   tape-free forward).
# * BENCH_train.json — full training epochs at Table-1 scale: the
#   per-node reference tape vs the batched matrix-level graph at
#   FD_THREADS 1 and 4.
# * BENCH_serve.json — the fd-serve HTTP load benchmark: 32 concurrent
#   keep-alive clients against the in-process server, with every
#   response verified bitwise against a sequential reference pass.
#
# Usage: scripts/bench.sh [tensor_out.json] [train_out.json] [train_scale]
#
# Any failing report subcommand (including a bitwise-determinism
# violation in the serve benchmark, which panics) aborts the script
# with a non-zero exit and names the step that failed.
#
# Numbers are medians of repeated runs but still machine-dependent;
# compare ratios within one file, not times across machines.
set -eu
cd "$(dirname "$0")/.."
tensor_out="${1:-BENCH_tensor.json}"
train_out="${2:-BENCH_train.json}"
train_scale="${3:-1.0}"
serve_out="${4:-BENCH_serve.json}"

run_report() {
    step="$1"
    shift
    echo "==> report $step" >&2
    if ! cargo run --release -p fd-bench --bin report -- "$@"; then
        echo "bench.sh: report $step FAILED" >&2
        exit 1
    fi
}

run_report tensor tensor "$tensor_out"
run_report train train "$train_out" "$train_scale"
run_report serve serve "$serve_out" 32 12
echo "==> wrote $tensor_out $train_out $serve_out" >&2

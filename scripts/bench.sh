#!/usr/bin/env sh
# Regenerates the benchmark artifacts at the repo root:
#
# * BENCH_tensor.json — seed-era naive tensor kernels vs the blocked
#   serial kernels and the row-parallel path (FD_THREADS=4), plus a
#   full model inference step (per-node tape replay vs batched
#   tape-free forward).
# * BENCH_train.json — full training epochs at Table-1 scale: the
#   per-node reference tape vs the batched matrix-level graph at
#   FD_THREADS 1 and 4.
#
# Usage: scripts/bench.sh [tensor_out.json] [train_out.json] [train_scale]
#
# Numbers are medians of repeated runs but still machine-dependent;
# compare ratios within one file, not times across machines.
set -eu
cd "$(dirname "$0")/.."
tensor_out="${1:-BENCH_tensor.json}"
train_out="${2:-BENCH_train.json}"
train_scale="${3:-1.0}"
cargo run --release -p fd-bench --bin report -- tensor "$tensor_out"
cargo run --release -p fd-bench --bin report -- train "$train_out" "$train_scale"

#!/usr/bin/env sh
# Regenerates the benchmark artifacts at the repo root:
#
# * BENCH_tensor.json — seed-era naive tensor kernels vs the blocked
#   serial kernels and the row-parallel path (FD_THREADS=4), plus a
#   full model inference step (per-node tape replay vs batched
#   tape-free forward).
# * BENCH_train.json — full training epochs at Table-1 scale: the
#   per-node reference tape vs the batched matrix-level graph across
#   FD_THREADS {1,2,4,8} (losses must be bit-identical at every width),
#   plus a neighbour-sampled scale sweep (default corpus scales
#   0.1/1/8 ≈ 1.4k/14k/112k articles) recording one sampled epoch's
#   wall-clock and peak RSS per scale.
# * BENCH_serve.json — the fd-serve HTTP load benchmark: 32 concurrent
#   keep-alive clients against the in-process server, with every
#   response verified bitwise against a sequential reference pass,
#   plus the direct f32-vs-int8 scoring comparison and its parity gate.
# * BENCH_load.json — the open-loop overload harness against the full
#   sharded tier (router + 2 shards × 2 replicas): a closed-loop probe
#   rates the tier's capacity, then ≥100k requests are fired at fixed
#   arrival rates — a rated phase that must hold its p99 SLO with
#   near-zero shedding, and a 2× overload phase that must shed with
#   429 + Retry-After *before* successful-request latency collapses.
#   Every 200 is verified bitwise against an unsharded control server.
#
# Every file's header records machine_threads, the FD_THREADS request,
# the resolved runtime width, and the detected SIMD level.
#
# Usage: scripts/bench.sh [tensor_out.json] [train_out.json] [train_scale]
#                         [serve_out.json] [sweep_scales] [load_out.json]
#                         [load_total]
#
# `sweep_scales` is the comma-separated list for the sampled scale
# sweep (pass "" to skip it). `load_total` is the open-loop request
# count for the load harness (default 105000; the issue floor is 100k).
#
# Any failing report subcommand (including a bitwise-determinism
# violation in the serve benchmark, which panics) aborts the script
# with a non-zero exit and names the step that failed.
#
# Numbers are medians of repeated runs but still machine-dependent;
# compare ratios within one file, not times across machines.
set -eu
cd "$(dirname "$0")/.."
tensor_out="${1:-BENCH_tensor.json}"
train_out="${2:-BENCH_train.json}"
train_scale="${3:-1.0}"
serve_out="${4:-BENCH_serve.json}"
sweep_scales="${5:-0.1,1,8}"
load_out="${6:-BENCH_load.json}"
load_total="${7:-105000}"

run_report() {
    step="$1"
    shift
    echo "==> report $step" >&2
    if ! cargo run --release -p fd-bench --bin report -- "$@"; then
        echo "bench.sh: report $step FAILED" >&2
        exit 1
    fi
}

run_report tensor tensor "$tensor_out"
run_report train train "$train_out" "$train_scale" "$sweep_scales"
run_report serve serve "$serve_out" 32 12
run_report load load "$load_out" "$load_total" 500

# Scaling smoke: threads must actually pay. On a multi-core machine the
# batched 4-thread epoch must be at least 1.15x faster than batched
# serial, or the persistent-pool runtime has regressed. On a 1-core
# machine there is nothing to win, so skip with a loud notice instead
# of reporting a meaningless ratio.
json_number() {
    # Pulls `"key": 123.45` out of a pretty-printed JSON file.
    sed -n "s/^.*\"$2\": *\([0-9.][0-9.]*\).*$/\1/p" "$1" | head -n 1
}
cores="$(nproc 2>/dev/null || echo 1)"
if [ "$cores" -le 1 ]; then
    echo "bench.sh: NOTICE: available_parallelism is 1, skipping the 4-thread scaling smoke" >&2
else
    serial_ms="$(json_number "$train_out" median_batched_serial_epoch_ms)"
    four_t_ms="$(json_number "$train_out" median_batched_parallel_4t_epoch_ms)"
    if [ -z "$serial_ms" ] || [ -z "$four_t_ms" ]; then
        echo "bench.sh: scaling smoke FAILED: medians missing from $train_out" >&2
        exit 1
    fi
    ok="$(awk -v s="$serial_ms" -v p="$four_t_ms" 'BEGIN { print (s / p >= 1.15) ? 1 : 0 }')"
    speedup="$(awk -v s="$serial_ms" -v p="$four_t_ms" 'BEGIN { printf "%.2f", s / p }')"
    if [ "$ok" != 1 ]; then
        echo "bench.sh: scaling smoke FAILED: batched 4-thread epoch is only ${speedup}x batched serial (${serial_ms}ms -> ${four_t_ms}ms, need >= 1.15x on a ${cores}-core machine)" >&2
        exit 1
    fi
    echo "==> scaling smoke ok: 4-thread epoch ${speedup}x batched serial" >&2
fi
echo "==> wrote $tensor_out $train_out $serve_out $load_out" >&2

#!/usr/bin/env sh
# Regenerates BENCH_tensor.json at the repo root: times the seed-era
# naive tensor kernels against the blocked serial kernels and the
# row-parallel path (FD_THREADS=4), plus a full model inference step
# (per-node tape replay vs batched tape-free forward).
#
# Usage: scripts/bench.sh [output.json]
#
# Numbers are medians of repeated runs but still machine-dependent;
# compare ratios within one file, not times across machines.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_tensor.json}"
cargo run --release -p fd-bench --bin report -- tensor "$out"

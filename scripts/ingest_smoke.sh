#!/usr/bin/env sh
# Online-ingestion smoke for `fdctl serve` + `POST /v1/ingest`:
#
# 1. Train a bundle and serve it on an ephemeral port with a small
#    `--max-ingest-nodes` cap.
# 2. Keep a client hammering /v1/predict while articles, creators and
#    subjects are ingested through both `fdctl ingest` and raw curl —
#    every predict across every ingest must be HTTP 200.
# 3. Ingested nodes must be readable back via predict-by-id and show up
#    in /healthz combined counts; hostile payloads must map to 4xx.
# 4. SIGHUP must discard the ingested overlay (the fast path is a cache
#    over the frozen bundle) and ingestion must work again after it.
# 5. The in-process ingest benchmark runs at a tiny scale, which
#    self-asserts the delta-vs-full-recompute bound and that no predict
#    was dropped.
#
# Usage: scripts/ingest_smoke.sh
#
# Exits non-zero, naming the step, on any violation.
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/fd-ingest-XXXXXX")"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null
    [ -n "$server_pid" ] && wait "$server_pid" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "==> build fdctl (release)" >&2
cargo build --release --bin fdctl
fdctl=target/release/fdctl

echo "==> generate corpus + train a bundle" >&2
"$fdctl" generate --scale 0.02 --seed 7 --out "$work/corpus.json"
"$fdctl" train --corpus "$work/corpus.json" --out "$work/model.json" \
    --epochs 1 --seed 42 --mode binary

echo "==> start fdctl serve on an ephemeral port" >&2
"$fdctl" serve --corpus "$work/corpus.json" --model "$work/model.json" \
    --addr 127.0.0.1:0 --max-ingest-nodes 8 >"$work/serve.log" 2>&1 &
server_pid=$!
addr=""
tries=0
while [ -z "$addr" ]; do
    addr="$(sed -n 's/^listening on \([0-9.:]*\).*/\1/p' "$work/serve.log" | head -1)"
    [ -n "$addr" ] && break
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ] || ! kill -0 "$server_pid" 2>/dev/null; then
        echo "ingest_smoke.sh: server never came up" >&2
        cat "$work/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
base_articles="$(sed -n 's/^corpus: \([0-9]*\) articles.*/\1/p' "$work/serve.log" | head -1)"
echo "==> serving on $addr (pid $server_pid), $base_articles base articles" >&2

post() { # post <path> <body> — prints the HTTP status code
    curl -s -o "$work/last_body.json" -w '%{http_code}' -X POST \
        -d "$2" "http://$addr$1"
}
predict_body='{"text":"claim about the budget deficit and medicare","creator":0,"subjects":[0]}'
[ "$(post /v1/predict "$predict_body")" = "200" ] || {
    echo "ingest_smoke.sh: warm-up predict failed" >&2
    exit 1
}

echo "==> hammer /v1/predict while ingesting" >&2
: >"$work/codes.txt"
(
    while [ ! -e "$work/stop" ]; do
        post /v1/predict "$predict_body" >>"$work/codes.txt"
        printf '\n' >>"$work/codes.txt"
    done
) &
load_pid=$!

echo "==> ingest one article through fdctl ingest" >&2
"$fdctl" ingest --addr "$addr" \
    --text "fresh claim about the border and the budget" \
    --creator 0 --subjects 0,1 >"$work/ingest_cli.json"
grep -q '"articles_total"' "$work/ingest_cli.json" || {
    echo "ingest_smoke.sh: fdctl ingest printed no report" >&2
    cat "$work/ingest_cli.json" >&2
    exit 1
}

echo "==> ingest a mixed batch through raw curl" >&2
batch='{"creators":[{"profile":"new pundit"}],"subjects":[{"description":"new topic"}],"articles":[{"text":"second claim on medicare","creator":0,"subjects":[0]}]}'
[ "$(post /v1/ingest "$batch")" = "200" ] || {
    echo "ingest_smoke.sh: mixed-batch ingest failed" >&2
    cat "$work/last_body.json" >&2
    exit 1
}

echo "==> read the ingested articles back by id" >&2
for offset in 0 1; do
    id=$((base_articles + offset))
    [ "$(post /v1/predict "{\"node_type\":\"article\",\"id\":$id}")" = "200" ] || {
        echo "ingest_smoke.sh: by-id readout of article $id failed" >&2
        cat "$work/last_body.json" >&2
        exit 1
    }
done
grown=$((base_articles + 2))
curl -s "http://$addr/healthz" | grep -q "\"articles\":$grown" || {
    echo "ingest_smoke.sh: healthz does not show $grown combined articles" >&2
    curl -s "http://$addr/healthz" >&2
    exit 1
}

echo "==> hostile payloads map to 4xx" >&2
check_status() { # check_status <want> <got> <what>
    [ "$2" = "$1" ] || {
        echo "ingest_smoke.sh: $3: expected HTTP $1, got $2" >&2
        cat "$work/last_body.json" >&2
        exit 1
    }
}
check_status 400 "$(post /v1/ingest '{}')" "empty batch"
check_status 400 "$(post /v1/ingest 'not json')" "malformed JSON"
check_status 400 "$(post /v1/ingest '{"articles":[{"text":"x","creator":999999}]}')" \
    "creator out of range"
big='{"creators":[{"profile":"a"},{"profile":"b"},{"profile":"c"},{"profile":"d"},{"profile":"e"},{"profile":"f"},{"profile":"g"},{"profile":"h"},{"profile":"i"}]}'
check_status 413 "$(post /v1/ingest "$big")" "batch over --max-ingest-nodes"
check_status 405 "$(curl -s -o "$work/last_body.json" -w '%{http_code}' "http://$addr/v1/ingest")" \
    "GET on /v1/ingest"

echo "==> SIGHUP discards the ingested overlay" >&2
kill -HUP "$server_pid"
tries=0
until grep -q 'reload complete' "$work/serve.log"; do
    tries=$((tries + 1))
    [ "$tries" -gt 100 ] && {
        echo "ingest_smoke.sh: reload never completed" >&2
        cat "$work/serve.log" >&2
        exit 1
    }
    sleep 0.1
done
curl -s "http://$addr/healthz" | grep -q "\"articles\":$base_articles" || {
    echo "ingest_smoke.sh: reload did not restore base counts" >&2
    curl -s "http://$addr/healthz" >&2
    exit 1
}
check_status 404 "$(post /v1/predict "{\"id\":$base_articles}")" \
    "by-id readout of a discarded node"

echo "==> ingestion works again after the reload" >&2
check_status 200 "$(post /v1/ingest '{"articles":[{"text":"post-reload claim","creator":0,"subjects":[0]}]}')" \
    "post-reload ingest"

touch "$work/stop"
wait "$load_pid"
total="$(wc -l <"$work/codes.txt")"
bad="$(grep -cv '^200$' "$work/codes.txt" || true)"
echo "==> $total predicts during ingest traffic, $bad non-200" >&2
[ "$total" -gt 0 ] || {
    echo "ingest_smoke.sh: load generator made no requests" >&2
    exit 1
}
[ "$bad" -eq 0 ] || {
    echo "ingest_smoke.sh: $bad predict(s) failed during ingest" >&2
    exit 1
}

echo "==> graceful shutdown" >&2
kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "==> small-scale ingest benchmark (delta bound + latency gates)" >&2
cargo run --release -p fd-bench --bin report -- ingest "$work/BENCH_ingest_ci.json" 0.05
grep -q '"corpus_size_independent": true' "$work/BENCH_ingest_ci.json" || {
    echo "ingest_smoke.sh: benchmark report missing the independence gate" >&2
    exit 1
}

echo "==> ingest smoke passed" >&2

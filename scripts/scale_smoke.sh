#!/usr/bin/env sh
# Bounded-memory scale drill for neighbour-sampled minibatch training:
#
# 1. Train one sampled epoch over a tiled corpus at --scale N (default
#    8 = 8 Table-1 shards ≈ 112k articles) under a hard address-space
#    ceiling (ulimit -v). The dense full-graph path materialises one
#    N×H variable per (node type, diffusion round) on the autograd tape
#    and does not fit; peak memory in sampled mode scales with
#    batch×fanout^rounds, so the run must complete under the ceiling.
# 2. Assert checkpoint/resume stays bitwise in sampled mode: a control
#    run (2 epochs, per-epoch checkpoints) vs an interrupted run (1
#    epoch, then --resume to 2) must produce byte-identical final
#    checkpoints (checkpoints carry weights + optimizer state + loss
#    history and exclude wall-clock, so byte equality is the bitwise-
#    resume guarantee; train bundles embed epoch_ms and cannot match).
# 3. Regenerate a small BENCH_train.json (scale sweep included) and
#    gate its provenance header — scale, machine_threads, per-point
#    peak_rss_mb — through `fdctl obs --check --bench`.
#
# Usage: scripts/scale_smoke.sh [big_scale] [vmem_kb]
#
# Exits non-zero, naming the step, on any violation.
set -eu
cd "$(dirname "$0")/.."
big_scale="${1:-8}"
vmem_kb="${2:-4194304}" # 4 GiB

work="$(mktemp -d "${TMPDIR:-/tmp}/fd-scale-XXXXXX")"
trap 'rm -rf "$work"' EXIT INT TERM

echo "==> build fdctl + report (release)" >&2
cargo build --release --bin fdctl -p fakedetector
cargo build --release --bin report -p fd-bench
fdctl=target/release/fdctl

echo "==> sampled epoch at scale $big_scale under ulimit -v ${vmem_kb}kB" >&2
(
    ulimit -v "$vmem_kb"
    "$fdctl" train --scale "$big_scale" --seed 7 --epochs 1 \
        --batch-size 256 --fanout 8 --rounds 2 --out "$work/big.json"
) || {
    echo "scale_smoke.sh: sampled training failed under the memory ceiling" >&2
    exit 1
}
[ -s "$work/big.json" ] || {
    echo "scale_smoke.sh: sampled run left no bundle behind" >&2
    exit 1
}

echo "==> bitwise checkpoint/resume in sampled mode (scale 1)" >&2
train1() {
    # $1 = bundle path, $2 = checkpoint dir, $3 = epochs, then extras.
    out="$1"; dir="$2"; epochs="$3"; shift 3
    "$fdctl" train --scale 1 --seed 42 --epochs "$epochs" \
        --batch-size 256 --fanout 8 --rounds 2 \
        --checkpoint-dir "$dir" --checkpoint-every 1 --out "$out" "$@"
}
train1 "$work/control.json" "$work/ckpt-control" 2
train1 "$work/partial.json" "$work/ckpt-resume" 1
train1 "$work/resumed.json" "$work/ckpt-resume" 2 --resume
latest() {
    find "$1" -name '*.fdck' | sort | tail -1
}
control_final="$(latest "$work/ckpt-control")"
resumed_final="$(latest "$work/ckpt-resume")"
if [ "$(basename "$control_final")" != "$(basename "$resumed_final")" ]; then
    echo "scale_smoke.sh: control and resumed runs ended at different epochs" >&2
    exit 1
fi
if ! cmp "$control_final" "$resumed_final"; then
    echo "scale_smoke.sh: sampled resume diverged bitwise from the control run" >&2
    exit 1
fi

echo "==> BENCH_train.json provenance gate" >&2
cargo run --release -q -p fd-bench --bin report -- train "$work/bench.json" 0.05 "0.05,0.1"
FD_LOG=info FD_LOG_FILE="$work/obs.jsonl" "$fdctl" obs --check \
    --bench "$work/bench.json" --out "$work/OBS.json" --epochs 2 --scale 0.02

echo "==> scale smoke passed" >&2

#!/usr/bin/env sh
# End-to-end tracing smoke:
#
# 1. Train a small bundle with FD_TRACE=on writing a Chrome trace file;
#    the file must summarize (fdctl trace summarize) and carry the
#    training phases (train.fit / train.epoch / train.forward / …).
# 2. Serve that bundle traced, drive it with a few /v1/predict and
#    /v1/predict_batch requests carrying X-Request-Id, and SIGTERM it;
#    the flushed trace must summarize and carry the serve hot-path
#    spans (request / queue.wait / batch.score / …).
# 3. Scrape GET /metrics while the server is up: the default exposition
#    must look like Prometheus text (TYPE comments, fd_-prefixed
#    names), and ?format=json must still be JSON.
#
# Usage: scripts/trace_smoke.sh
#
# Exits non-zero, naming the step, on any violation.
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/fd-trace-XXXXXX")"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null
    [ -n "$server_pid" ] && wait "$server_pid" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "==> build fdctl (release)" >&2
cargo build --release --bin fdctl
fdctl=target/release/fdctl

echo "==> traced training run" >&2
"$fdctl" generate --scale 0.02 --seed 7 --out "$work/corpus.json"
FD_TRACE=on FD_TRACE_FILE="$work/trace_train.json" \
    "$fdctl" train --corpus "$work/corpus.json" --out "$work/model.json" \
    --epochs 3 --seed 42 --mode binary
[ -s "$work/trace_train.json" ] || {
    echo "trace_smoke.sh: traced train wrote no trace file" >&2
    exit 1
}
"$fdctl" trace summarize "$work/trace_train.json" >"$work/train_summary.txt"
cat "$work/train_summary.txt" >&2
for span in train.fit train.epoch train.forward train.backward train.optimizer; do
    grep -q "$span" "$work/train_summary.txt" || {
        echo "trace_smoke.sh: train summary missing $span" >&2
        exit 1
    }
done

echo "==> traced serve run" >&2
FD_TRACE=on FD_TRACE_FILE="$work/trace_serve.json" \
    "$fdctl" serve --corpus "$work/corpus.json" --model "$work/model.json" \
    --addr 127.0.0.1:0 --max-batch 8 >"$work/serve.log" 2>&1 &
server_pid=$!
addr=""
tries=0
while [ -z "$addr" ]; do
    addr="$(sed -n 's/^listening on \([0-9.:]*\).*/\1/p' "$work/serve.log" | head -1)"
    [ -n "$addr" ] && break
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ] || ! kill -0 "$server_pid" 2>/dev/null; then
        echo "trace_smoke.sh: server never came up" >&2
        cat "$work/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "==> serving on $addr (pid $server_pid)" >&2

body='{"text":"claim about the budget deficit and medicare","creator":0,"subjects":[0]}'
i=0
while [ "$i" -lt 8 ]; do
    code="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        -H "x-request-id: smoke-$i" -d "$body" "http://$addr/v1/predict")"
    [ "$code" = "200" ] || {
        echo "trace_smoke.sh: /v1/predict request $i returned $code" >&2
        exit 1
    }
    i=$((i + 1))
done
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H "x-request-id: smoke-batch" -d "{\"requests\":[$body,$body]}" \
    "http://$addr/v1/predict_batch")"
[ "$code" = "200" ] || {
    echo "trace_smoke.sh: /v1/predict_batch returned $code" >&2
    exit 1
}

echo "==> scrape /metrics (Prometheus + JSON)" >&2
curl -s "http://$addr/metrics" >"$work/metrics.prom"
grep -q '^# TYPE fd_serve_requests_total counter' "$work/metrics.prom" || {
    echo "trace_smoke.sh: /metrics is not Prometheus text" >&2
    head "$work/metrics.prom" >&2
    exit 1
}
grep -q '^fd_serve_queue_wait_us_bucket' "$work/metrics.prom" || {
    echo "trace_smoke.sh: /metrics missing queue-wait histogram buckets" >&2
    exit 1
}
curl -s "http://$addr/metrics?format=json" >"$work/metrics.json"
grep -q '"counters"' "$work/metrics.json" || {
    echo "trace_smoke.sh: /metrics?format=json is not the JSON snapshot" >&2
    exit 1
}

echo "==> graceful shutdown + serve trace summary" >&2
kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
[ -s "$work/trace_serve.json" ] || {
    echo "trace_smoke.sh: traced serve wrote no trace file" >&2
    cat "$work/serve.log" >&2
    exit 1
}
"$fdctl" trace summarize "$work/trace_serve.json" >"$work/serve_summary.txt"
cat "$work/serve_summary.txt" >&2
for span in request http.parse queue.wait batch.assemble batch.score respond; do
    grep -q "$span" "$work/serve_summary.txt" || {
        echo "trace_smoke.sh: serve summary missing $span" >&2
        exit 1
    }
done

echo "==> trace smoke passed" >&2

#!/usr/bin/env sh
# SIGHUP hot-reload smoke for `fdctl serve`:
#
# 1. Train two distinguishable bundles (1 epoch vs 3 epochs) over the
#    same corpus.
# 2. Serve bundle A, then keep a client hammering /v1/predict while the
#    bundle file is swapped on disk and the server is SIGHUP'd several
#    times.
# 3. Every response across every reload must be HTTP 200 — the atomic
#    model swap means in-flight requests finish on whichever model they
#    started with and nothing is dropped.
# 4. The server log must show each reload completing, and a final
#    request must succeed on the last-loaded model.
#
# Usage: scripts/serve_reload_smoke.sh [reloads]
#
# Exits non-zero, naming the step, on any violation.
set -eu
cd "$(dirname "$0")/.."
reloads="${1:-6}"

work="$(mktemp -d "${TMPDIR:-/tmp}/fd-reload-XXXXXX")"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null
    [ -n "$server_pid" ] && wait "$server_pid" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "==> build fdctl (release)" >&2
cargo build --release --bin fdctl
fdctl=target/release/fdctl

echo "==> generate corpus + train two bundles" >&2
"$fdctl" generate --scale 0.02 --seed 7 --out "$work/corpus.json"
"$fdctl" train --corpus "$work/corpus.json" --out "$work/bundle_a.json" \
    --epochs 1 --seed 42 --mode binary
"$fdctl" train --corpus "$work/corpus.json" --out "$work/bundle_b.json" \
    --epochs 3 --seed 42 --mode binary
cp "$work/bundle_a.json" "$work/model.json"

echo "==> start fdctl serve on an ephemeral port" >&2
"$fdctl" serve --corpus "$work/corpus.json" --model "$work/model.json" \
    --addr 127.0.0.1:0 >"$work/serve.log" 2>&1 &
server_pid=$!
addr=""
tries=0
while [ -z "$addr" ]; do
    addr="$(sed -n 's/^listening on \([0-9.:]*\).*/\1/p' "$work/serve.log" | head -1)"
    [ -n "$addr" ] && break
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ] || ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve_reload_smoke.sh: server never came up" >&2
        cat "$work/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "==> serving on $addr (pid $server_pid)" >&2
body='{"text":"claim about the budget deficit and medicare","creator":0,"subjects":[0]}'

probe() {
    curl -s -o /dev/null -w '%{http_code}' -X POST \
        -d "$body" "http://$addr/v1/predict"
}
[ "$(probe)" = "200" ] || {
    echo "serve_reload_smoke.sh: warm-up request failed" >&2
    exit 1
}

echo "==> hammer /v1/predict while reloading $reloads times" >&2
: >"$work/codes.txt"
(
    while [ ! -e "$work/stop" ]; do
        probe >>"$work/codes.txt"
        printf '\n' >>"$work/codes.txt"
    done
) &
load_pid=$!
i=0
while [ "$i" -lt "$reloads" ]; do
    if [ $((i % 2)) -eq 0 ]; then src="bundle_b.json"; else src="bundle_a.json"; fi
    cp "$work/$src" "$work/model.json"
    kill -HUP "$server_pid"
    sleep 0.3
    i=$((i + 1))
done
touch "$work/stop"
wait "$load_pid"

total="$(wc -l <"$work/codes.txt")"
bad="$(grep -cv '^200$' "$work/codes.txt" || true)"
echo "==> $total requests across $reloads reloads, $bad non-200" >&2
[ "$total" -gt 0 ] || {
    echo "serve_reload_smoke.sh: load generator made no requests" >&2
    exit 1
}
[ "$bad" -eq 0 ] || {
    echo "serve_reload_smoke.sh: $bad request(s) failed during reload" >&2
    exit 1
}
completed="$(grep -c 'reload complete' "$work/serve.log" || true)"
[ "$completed" -eq "$reloads" ] || {
    echo "serve_reload_smoke.sh: expected $reloads completed reloads, saw $completed" >&2
    cat "$work/serve.log" >&2
    exit 1
}

echo "==> graceful shutdown" >&2
kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "==> reload smoke passed" >&2
